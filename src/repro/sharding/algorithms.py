"""Preset sharding algorithms and the SPI-style algorithm registry.

The paper states ShardingSphere "presets 10 sharding algorithms" loadable
through Java's SPI mechanism, and that users extend them by implementing
``ShardingAlgorithm``. This module mirrors that: ten presets matching the
upstream catalogue (MOD, HASH_MOD, VOLUME_RANGE, BOUNDARY_RANGE,
AUTO_INTERVAL, INTERVAL, INLINE, COMPLEX_INLINE, HINT_INLINE, CLASS_BASED)
plus :func:`register_algorithm` as the SPI extension point.

An algorithm maps sharding-column values onto *target names* (actual table
names or data source names). Precise values (``=`` / ``IN``) go through
:meth:`ShardingAlgorithm.do_sharding`; ranges (``BETWEEN`` / comparisons)
go through :meth:`ShardingAlgorithm.do_range_sharding`, which conservatively
returns all targets unless the algorithm can prune.
"""

from __future__ import annotations

import abc
import datetime
import functools
import hashlib
import re
from typing import Any, Callable, Iterable, Sequence

from ..exceptions import ShardingConfigError, UnknownAlgorithmError


class ShardingAlgorithm(abc.ABC):
    """Base class for all sharding algorithms."""

    type_name: str = ""

    def __init__(self, props: dict[str, Any] | None = None):
        self.props = dict(props or {})

    @abc.abstractmethod
    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        """Pick the single target holding ``value``."""

    def do_range_sharding(self, targets: Sequence[str], low: Any, high: Any) -> list[str]:
        """Targets that may hold values in [low, high]; default: all."""
        return list(targets)

    # -- helpers shared by suffix-matching algorithms ----------------------

    @staticmethod
    @functools.lru_cache(maxsize=1024)
    def _suffix_map(targets: tuple[str, ...]) -> dict[int, str]:
        """numeric-suffix -> target, first target wins on duplicates."""
        mapping: dict[int, str] = {}
        for target in targets:
            match = re.search(r"(\d+)$", target)
            if match is not None:
                mapping.setdefault(int(match.group(1)), target)
        return mapping

    @staticmethod
    def pick_by_index(targets: Sequence[str], index: int) -> str:
        """Match a shard index to a target by its numeric suffix.

        Mirrors ShardingSphere's convention of actual tables named
        ``t_user_0``, ``t_user_1``: the target whose trailing number equals
        ``index`` wins; with no suffix match, fall back positionally.
        The per-target suffix parse is memoized: routing runs this on
        every statement, the regex only on new target sets.
        """
        target = ShardingAlgorithm._suffix_map(tuple(targets)).get(index)
        if target is not None:
            return target
        ordered = sorted(targets)
        return ordered[index % len(ordered)]


# ---------------------------------------------------------------------------
# Modulo family
# ---------------------------------------------------------------------------


class ModShardingAlgorithm(ShardingAlgorithm):
    """``value % sharding-count`` for integral sharding keys."""

    type_name = "MOD"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        self.sharding_count = int(self.props.get("sharding-count", 0))
        if self.sharding_count <= 0:
            raise ShardingConfigError("MOD requires a positive 'sharding-count'")

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        index = int(value) % self.sharding_count
        return self.pick_by_index(targets, index)

    def do_range_sharding(self, targets: Sequence[str], low: Any, high: Any) -> list[str]:
        if low is None or high is None:
            return list(targets)
        low_i, high_i = int(low), int(high)
        if high_i - low_i + 1 >= self.sharding_count:
            return list(targets)
        return [self.pick_by_index(targets, v % self.sharding_count) for v in range(low_i, high_i + 1)]


class HashModShardingAlgorithm(ShardingAlgorithm):
    """``hash(value) % sharding-count``; works for any key type.

    Uses md5 so results are stable across processes (Python's builtin
    ``hash`` is salted per process, which would break AutoTable restarts).
    """

    type_name = "HASH_MOD"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        self.sharding_count = int(self.props.get("sharding-count", 0))
        if self.sharding_count <= 0:
            raise ShardingConfigError("HASH_MOD requires a positive 'sharding-count'")

    @staticmethod
    def stable_hash(value: Any) -> int:
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, int):
            return value if value >= 0 else -value
        digest = hashlib.md5(str(value).encode("utf-8")).hexdigest()
        return int(digest[:15], 16)

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        index = self.stable_hash(value) % self.sharding_count
        return self.pick_by_index(targets, index)

    def do_range_sharding(self, targets: Sequence[str], low: Any, high: Any) -> list[str]:
        # Integral keys hash to themselves, so small ranges can be pruned
        # exactly like MOD; anything else scatters across all shards.
        if isinstance(low, int) and isinstance(high, int) and high - low + 1 < self.sharding_count:
            return [self.pick_by_index(targets, self.stable_hash(v) % self.sharding_count)
                    for v in range(low, high + 1)]
        return list(targets)


# ---------------------------------------------------------------------------
# Range family
# ---------------------------------------------------------------------------


class VolumeRangeShardingAlgorithm(ShardingAlgorithm):
    """Fixed-volume ranges: [lower, upper) split every ``sharding-volume``."""

    type_name = "VOLUME_RANGE"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        try:
            self.lower = float(self.props["range-lower"])
            self.upper = float(self.props["range-upper"])
            self.volume = float(self.props["sharding-volume"])
        except KeyError as exc:
            raise ShardingConfigError(f"VOLUME_RANGE missing property {exc}") from None
        if self.volume <= 0 or self.upper <= self.lower:
            raise ShardingConfigError("VOLUME_RANGE requires upper > lower and volume > 0")
        self.partitions = int((self.upper - self.lower + self.volume - 1) // self.volume) + 2

    def _index_of(self, value: Any) -> int:
        v = float(value)
        if v < self.lower:
            return 0
        if v >= self.upper:
            return self.partitions - 1
        return int((v - self.lower) // self.volume) + 1

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        return self.pick_by_index(targets, self._index_of(value))

    def do_range_sharding(self, targets: Sequence[str], low: Any, high: Any) -> list[str]:
        if low is None:
            low = self.lower - 1
        if high is None:
            high = self.upper
        indices = range(self._index_of(low), self._index_of(high) + 1)
        seen: dict[str, None] = {}
        for index in indices:
            seen.setdefault(self.pick_by_index(targets, index))
        return list(seen)


class BoundaryRangeShardingAlgorithm(ShardingAlgorithm):
    """Explicit boundaries: ``sharding-ranges`` = "10,20,30" gives 4 shards."""

    type_name = "BOUNDARY_RANGE"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        raw = self.props.get("sharding-ranges", "")
        if isinstance(raw, str):
            parts = [p.strip() for p in raw.split(",") if p.strip()]
        else:
            parts = list(raw)
        try:
            self.boundaries = sorted(float(p) for p in parts)
        except ValueError:
            raise ShardingConfigError("BOUNDARY_RANGE 'sharding-ranges' must be numeric") from None
        if not self.boundaries:
            raise ShardingConfigError("BOUNDARY_RANGE requires non-empty 'sharding-ranges'")

    def _index_of(self, value: Any) -> int:
        v = float(value)
        for i, boundary in enumerate(self.boundaries):
            if v < boundary:
                return i
        return len(self.boundaries)

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        return self.pick_by_index(targets, self._index_of(value))

    def do_range_sharding(self, targets: Sequence[str], low: Any, high: Any) -> list[str]:
        low_i = self._index_of(low) if low is not None else 0
        high_i = self._index_of(high) if high is not None else len(self.boundaries)
        seen: dict[str, None] = {}
        for index in range(low_i, high_i + 1):
            seen.setdefault(self.pick_by_index(targets, index))
        return list(seen)


# ---------------------------------------------------------------------------
# Time family
# ---------------------------------------------------------------------------


def _to_datetime(value: Any) -> datetime.datetime:
    if isinstance(value, datetime.datetime):
        return value
    if isinstance(value, datetime.date):
        return datetime.datetime(value.year, value.month, value.day)
    if isinstance(value, (int, float)):
        return datetime.datetime.fromtimestamp(value, tz=datetime.timezone.utc).replace(tzinfo=None)
    return datetime.datetime.fromisoformat(str(value))


class AutoIntervalShardingAlgorithm(ShardingAlgorithm):
    """Even time slices of ``sharding-seconds`` between lower and upper."""

    type_name = "AUTO_INTERVAL"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        try:
            self.lower = _to_datetime(self.props["datetime-lower"])
            self.upper = _to_datetime(self.props["datetime-upper"])
            self.seconds = int(self.props["sharding-seconds"])
        except KeyError as exc:
            raise ShardingConfigError(f"AUTO_INTERVAL missing property {exc}") from None
        if self.seconds <= 0 or self.upper <= self.lower:
            raise ShardingConfigError("AUTO_INTERVAL requires upper > lower and positive seconds")

    def _index_of(self, value: Any) -> int:
        moment = _to_datetime(value)
        if moment < self.lower:
            return 0
        offset = int((moment - self.lower).total_seconds()) // self.seconds
        return offset + 1

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        return self.pick_by_index(targets, self._index_of(value))

    def do_range_sharding(self, targets: Sequence[str], low: Any, high: Any) -> list[str]:
        if low is None or high is None:
            return list(targets)
        seen: dict[str, None] = {}
        for index in range(self._index_of(low), self._index_of(high) + 1):
            seen.setdefault(self.pick_by_index(targets, index))
        return list(seen)


class IntervalShardingAlgorithm(ShardingAlgorithm):
    """Calendar intervals: one shard per day/month/year slice.

    ``datetime-interval-unit`` in {DAYS, MONTHS, YEARS}; the shard suffix
    is the formatted slice (e.g. ``t_log_202111``), mirroring the upstream
    INTERVAL algorithm's ``sharding-suffix-pattern``.
    """

    type_name = "INTERVAL"

    _FORMATS = {"DAYS": "%Y%m%d", "MONTHS": "%Y%m", "YEARS": "%Y"}

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        unit = str(self.props.get("datetime-interval-unit", "MONTHS")).upper()
        if unit not in self._FORMATS:
            raise ShardingConfigError(f"INTERVAL unit must be one of {sorted(self._FORMATS)}")
        self.unit = unit
        self.suffix_format = self.props.get("sharding-suffix-pattern", self._FORMATS[unit])

    def _suffix_of(self, value: Any) -> str:
        return _to_datetime(value).strftime(self.suffix_format)

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        suffix = self._suffix_of(value)
        for target in targets:
            if target.endswith(suffix):
                return target
        raise ShardingConfigError(
            f"no target with suffix {suffix!r} among {sorted(targets)}"
        )

    def do_range_sharding(self, targets: Sequence[str], low: Any, high: Any) -> list[str]:
        if low is None or high is None:
            return list(targets)
        low_dt, high_dt = _to_datetime(low), _to_datetime(high)
        out = []
        for target in targets:
            match = re.search(r"(\d+)$", target)
            if match is None:
                continue
            try:
                slice_dt = datetime.datetime.strptime(match.group(1), self.suffix_format)
            except ValueError:
                continue
            if self._slice_overlaps(slice_dt, low_dt, high_dt):
                out.append(target)
        return out or list(targets)

    def _slice_overlaps(self, start: datetime.datetime, low: datetime.datetime, high: datetime.datetime) -> bool:
        if self.unit == "DAYS":
            end = start + datetime.timedelta(days=1)
        elif self.unit == "MONTHS":
            end = (start.replace(day=1) + datetime.timedelta(days=32)).replace(day=1)
        else:
            end = start.replace(year=start.year + 1)
        return start <= high and end > low


# ---------------------------------------------------------------------------
# Inline family
# ---------------------------------------------------------------------------

_INLINE_PATTERN = re.compile(r"\$\{([^}]*)\}")
_SAFE_GLOBALS = {"__builtins__": {}, "abs": abs, "int": int, "str": str, "len": len, "hash": HashModShardingAlgorithm.stable_hash}


def evaluate_inline(expression: str, bindings: dict[str, Any]) -> str:
    """Evaluate a ShardingSphere inline expression like ``t_user_${uid % 2}``.

    The upstream system uses Groovy; we evaluate the ``${...}`` fragments
    as restricted Python expressions over the sharding-column bindings.
    """

    def substitute(match: re.Match[str]) -> str:
        fragment = match.group(1)
        try:
            value = eval(fragment, dict(_SAFE_GLOBALS), dict(bindings))  # noqa: S307
        except Exception as exc:
            raise ShardingConfigError(f"inline expression {fragment!r} failed: {exc}") from exc
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        return str(value)

    return _INLINE_PATTERN.sub(substitute, expression)


class InlineShardingAlgorithm(ShardingAlgorithm):
    """Single-column inline expression, e.g. ``t_user_h${uid % 2}``."""

    type_name = "INLINE"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        self.expression = self.props.get("algorithm-expression", "")
        if "${" not in self.expression:
            raise ShardingConfigError("INLINE requires an 'algorithm-expression' with ${...}")
        self.column = self.props.get("sharding-column")

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        bindings = {self.column or "value": value, "value": value}
        target = evaluate_inline(self.expression, bindings)
        if target not in targets:
            raise ShardingConfigError(f"inline produced {target!r}, not in {sorted(targets)}")
        return target


class ComplexInlineShardingAlgorithm(ShardingAlgorithm):
    """Multi-column inline expression over a dict of sharding values."""

    type_name = "COMPLEX_INLINE"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        self.expression = self.props.get("algorithm-expression", "")
        if "${" not in self.expression:
            raise ShardingConfigError("COMPLEX_INLINE requires an 'algorithm-expression'")
        raw = self.props.get("sharding-columns", "")
        self.columns = [c.strip() for c in raw.split(",") if c.strip()]

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        if not isinstance(value, dict):
            raise ShardingConfigError("COMPLEX_INLINE expects a column->value mapping")
        target = evaluate_inline(self.expression, value)
        if target not in targets:
            raise ShardingConfigError(f"inline produced {target!r}, not in {sorted(targets)}")
        return target


class HintInlineShardingAlgorithm(ShardingAlgorithm):
    """Routes by an externally supplied hint value, not a column."""

    type_name = "HINT_INLINE"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        self.expression = self.props.get("algorithm-expression", "${value}")

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        target = evaluate_inline(self.expression, {"value": value})
        if target not in targets:
            raise ShardingConfigError(f"hint produced {target!r}, not in {sorted(targets)}")
        return target


class ClassBasedShardingAlgorithm(ShardingAlgorithm):
    """Delegates to a user-provided callable (the CLASS_BASED preset)."""

    type_name = "CLASS_BASED"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        func = self.props.get("function")
        if not callable(func):
            raise ShardingConfigError("CLASS_BASED requires a callable 'function' property")
        self.function: Callable[[Sequence[str], Any], str] = func

    def do_sharding(self, targets: Sequence[str], value: Any) -> str:
        return self.function(targets, value)


# ---------------------------------------------------------------------------
# SPI-style registry
# ---------------------------------------------------------------------------

_ALGORITHMS: dict[str, type[ShardingAlgorithm]] = {}


def register_algorithm(cls: type[ShardingAlgorithm]) -> type[ShardingAlgorithm]:
    """Register an algorithm class under its ``type_name`` (SPI analogue).

    Usable as a decorator on user-defined algorithms.
    """
    if not cls.type_name:
        raise ShardingConfigError(f"{cls.__name__} must define a type_name")
    _ALGORITHMS[cls.type_name.upper()] = cls
    return cls


def create_algorithm(type_name: str, props: dict[str, Any] | None = None) -> ShardingAlgorithm:
    """Instantiate a registered algorithm by type name."""
    try:
        cls = _ALGORITHMS[type_name.upper()]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown sharding algorithm {type_name!r}; known: {sorted(_ALGORITHMS)}"
        ) from None
    return cls(props)


def available_algorithms() -> list[str]:
    return sorted(_ALGORITHMS)


for _cls in (
    ModShardingAlgorithm,
    HashModShardingAlgorithm,
    VolumeRangeShardingAlgorithm,
    BoundaryRangeShardingAlgorithm,
    AutoIntervalShardingAlgorithm,
    IntervalShardingAlgorithm,
    InlineShardingAlgorithm,
    ComplexInlineShardingAlgorithm,
    HintInlineShardingAlgorithm,
    ClassBasedShardingAlgorithm,
):
    register_algorithm(_cls)
