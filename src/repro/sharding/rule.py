"""Sharding rule model: data nodes, strategies, table rules, binding rules.

Terminology follows Section IV-A of the paper:

- *logic table* — the table name applications see (``t_user``);
- *actual table* — a physical table in some data source (``t_user_h0``);
- *data node* — ``data_source.actual_table``, the atomic sharding unit;
- *binding tables* — logic tables sharded by the same key/algorithm whose
  same-index shards co-reside, enabling the join optimization;
- *broadcast tables* — small tables replicated to every data source.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..exceptions import RouteError, ShardingConfigError
from .algorithms import ShardingAlgorithm, create_algorithm
from .keygen import KeyGenerator, create_key_generator

HINT_COLUMN = "__hint__"
"""Pseudo sharding column carrying hint values for HintShardingStrategy."""


@dataclass(frozen=True)
class DataNode:
    """One shard: an actual table within a data source."""

    data_source: str
    table: str

    def __str__(self) -> str:
        return f"{self.data_source}.{self.table}"

    @classmethod
    def parse(cls, text: str) -> "DataNode":
        try:
            data_source, table = text.split(".", 1)
        except ValueError:
            raise ShardingConfigError(f"bad data node {text!r}, expected 'ds.table'") from None
        return cls(data_source, table)


@dataclass
class ShardingValue:
    """Extracted condition on one sharding column.

    Either a list of precise ``values`` (from ``=`` / ``IN``) or a
    ``range_`` (low, high) from ``BETWEEN`` / comparisons — None bounds
    mean unbounded.
    """

    column: str
    values: list[Any] | None = None
    range_: tuple[Any, Any] | None = None

    @property
    def is_precise(self) -> bool:
        return self.values is not None

    def intersect(self, other: "ShardingValue") -> "ShardingValue":
        """AND-combine two conditions on the same column (best effort)."""
        if self.is_precise and other.is_precise:
            merged = [v for v in self.values if v in other.values]  # type: ignore[operator]
            return ShardingValue(self.column, values=merged)
        if self.is_precise:
            return self
        if other.is_precise:
            return other
        return self


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


class ShardingStrategy:
    """Maps sharding conditions to a subset of target names."""

    #: sharding columns this strategy consumes (lower-cased)
    columns: tuple[str, ...] = ()

    def route(self, targets: Sequence[str], conditions: Mapping[str, ShardingValue]) -> list[str]:
        raise NotImplementedError


class NoneShardingStrategy(ShardingStrategy):
    """No sharding: every target matches."""

    def route(self, targets: Sequence[str], conditions: Mapping[str, ShardingValue]) -> list[str]:
        return list(targets)


class StandardShardingStrategy(ShardingStrategy):
    """Single sharding column routed through one algorithm."""

    def __init__(self, column: str, algorithm: ShardingAlgorithm):
        self.column = column
        self.columns = (column.lower(),)
        self.algorithm = algorithm

    def route(self, targets: Sequence[str], conditions: Mapping[str, ShardingValue]) -> list[str]:
        condition = conditions.get(self.columns[0])
        if condition is None:
            return list(targets)
        if condition.is_precise:
            values = condition.values
            if len(values) == 1:  # type: ignore[arg-type]  # point lookup
                return [self.algorithm.do_sharding(targets, values[0])]  # type: ignore[index]
            seen: dict[str, None] = {}
            for value in values:  # type: ignore[union-attr]
                seen.setdefault(self.algorithm.do_sharding(targets, value))
            return list(seen)
        low, high = condition.range_  # type: ignore[misc]
        return self.algorithm.do_range_sharding(targets, low, high)


class ComplexShardingStrategy(ShardingStrategy):
    """Multiple sharding columns routed through one algorithm.

    The algorithm receives a column->value mapping; routing enumerates the
    cartesian product of precise values on all configured columns. If any
    column is missing or non-precise, the strategy degrades to all targets.
    """

    def __init__(self, columns: Sequence[str], algorithm: ShardingAlgorithm):
        self.columns = tuple(c.lower() for c in columns)
        self.original_columns = list(columns)
        self.algorithm = algorithm

    def route(self, targets: Sequence[str], conditions: Mapping[str, ShardingValue]) -> list[str]:
        value_lists: list[list[Any]] = []
        for column in self.columns:
            condition = conditions.get(column)
            if condition is None or not condition.is_precise or not condition.values:
                return list(targets)
            value_lists.append(condition.values)
        seen: dict[str, None] = {}
        for combo in itertools.product(*value_lists):
            bindings = dict(zip(self.original_columns, combo))
            seen.setdefault(self.algorithm.do_sharding(targets, bindings))
        return list(seen)


class HintShardingStrategy(ShardingStrategy):
    """Routed by hint values supplied outside the SQL statement."""

    def __init__(self, algorithm: ShardingAlgorithm):
        self.columns = (HINT_COLUMN,)
        self.algorithm = algorithm

    def route(self, targets: Sequence[str], conditions: Mapping[str, ShardingValue]) -> list[str]:
        condition = conditions.get(HINT_COLUMN)
        if condition is None or not condition.is_precise:
            return list(targets)
        seen: dict[str, None] = {}
        for value in condition.values:  # type: ignore[union-attr]
            seen.setdefault(self.algorithm.do_sharding(targets, value))
        return list(seen)


# ---------------------------------------------------------------------------
# Table rules
# ---------------------------------------------------------------------------


@dataclass
class KeyGenerateConfig:
    """Distributed key generation for one column of a logic table."""

    column: str
    generator: KeyGenerator


class TableRule:
    """Sharding configuration of one logic table."""

    def __init__(
        self,
        logic_table: str,
        data_nodes: Sequence[DataNode],
        database_strategy: ShardingStrategy | None = None,
        table_strategy: ShardingStrategy | None = None,
        key_generate: KeyGenerateConfig | None = None,
        auto: bool = False,
    ):
        if not data_nodes:
            raise ShardingConfigError(f"table rule {logic_table!r} needs at least one data node")
        self.logic_table = logic_table
        self.data_nodes = list(data_nodes)
        self.database_strategy = database_strategy or NoneShardingStrategy()
        self.table_strategy = table_strategy or NoneShardingStrategy()
        self.key_generate = key_generate
        self.auto = auto
        # Table names are only unique *within* a data source in the common
        # grid layout (ds0.t_user_0, ds1.t_user_0, ...), so nodes are keyed
        # by (data source, table). AutoTable requires globally unique names
        # because its single-level routing picks by table name alone.
        self._nodes_by_key: dict[tuple[str, str], DataNode] = {}
        self._node_by_table: dict[str, DataNode | None] = {}
        self._tables_by_ds: dict[str, list[str]] = {}
        for node in self.data_nodes:
            self._nodes_by_key[(node.data_source, node.table.lower())] = node
            key = node.table.lower()
            self._node_by_table[key] = None if key in self._node_by_table else node
            self._tables_by_ds.setdefault(node.data_source, []).append(node.table)
        self._data_source_names = list(self._tables_by_ds)
        if auto and any(n is None for n in self._node_by_table.values()):
            raise ShardingConfigError(
                f"AutoTable rule {logic_table!r} requires unique actual table names"
            )

    # -- views ------------------------------------------------------------

    @property
    def data_source_names(self) -> list[str]:
        return self._data_source_names

    @property
    def actual_table_names(self) -> list[str]:
        return [node.table for node in self.data_nodes]

    def node_index(self, node: DataNode) -> int:
        return self.data_nodes.index(node)

    # -- routing -------------------------------------------------------------

    def route(self, conditions: Mapping[str, ShardingValue]) -> list[DataNode]:
        """Data nodes matching the sharding conditions.

        AutoTables route in one step over actual table names (the algorithm
        owns the table->data-source assignment); classic rules route the
        data-source level then the table level, as in the paper's example
        ``uid % 2`` -> ``DS0.t_user_h0`` / ``DS1.t_user_h1``.
        """
        if self.auto:
            tables = self.table_strategy.route(self.actual_table_names, conditions)
            return [self._node_by_table[t.lower()] for t in tables]  # type: ignore[misc]
        routed: list[DataNode] = []
        data_sources = self.database_strategy.route(self.data_source_names, conditions)
        for ds in data_sources:
            tables = self._tables_by_ds.get(ds)
            if not tables:
                raise RouteError(f"database strategy produced unknown data source {ds!r}")
            for table in self.table_strategy.route(tables, conditions):
                routed.append(self._nodes_by_key[(ds, table.lower())])
        if not routed:
            raise RouteError(f"no data node matched for table {self.logic_table!r}")
        return routed

    @property
    def sharding_columns(self) -> set[str]:
        return set(self.database_strategy.columns) | set(self.table_strategy.columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TableRule({self.logic_table!r}, nodes={len(self.data_nodes)}, auto={self.auto})"


def build_standard_table_rule(
    logic_table: str,
    data_sources: Sequence[str],
    tables_per_source: int,
    database_column: str | None = None,
    database_algorithm: ShardingAlgorithm | None = None,
    table_column: str | None = None,
    table_algorithm: ShardingAlgorithm | None = None,
    key_generate: KeyGenerateConfig | None = None,
) -> TableRule:
    """Convenience constructor for the common grid layout.

    Creates data nodes ``ds_i.{logic}_{j}`` for every source i and table j,
    with optional standard strategies at each level.
    """
    nodes = [
        DataNode(ds, f"{logic_table}_{j}")
        for ds in data_sources
        for j in range(tables_per_source)
    ]
    db_strategy = (
        StandardShardingStrategy(database_column, database_algorithm)
        if database_column and database_algorithm
        else None
    )
    tb_strategy = (
        StandardShardingStrategy(table_column, table_algorithm)
        if table_column and table_algorithm
        else None
    )
    return TableRule(
        logic_table,
        nodes,
        database_strategy=db_strategy,
        table_strategy=tb_strategy,
        key_generate=key_generate,
    )


# ---------------------------------------------------------------------------
# The aggregate rule
# ---------------------------------------------------------------------------


class ShardingRule:
    """Complete sharding configuration of one logical schema.

    Rules start mutable (DistSQL RDL and tests build them incrementally).
    Once handed to a :class:`~repro.metadata.MetadataContext` snapshot the
    managing :class:`~repro.metadata.ContextManager` calls :meth:`freeze`;
    frozen rules reject every mutator, and the single writer mutates a
    :meth:`copy` instead (copy-on-write snapshots).
    """

    def __init__(
        self,
        table_rules: Iterable[TableRule] = (),
        binding_groups: Iterable[Sequence[str]] = (),
        broadcast_tables: Iterable[str] = (),
        default_data_source: str | None = None,
    ):
        self._frozen = False
        self._table_rules: dict[str, TableRule] = {}
        for rule in table_rules:
            self.add_table_rule(rule)
        self.binding_groups: list[set[str]] = []
        for group in binding_groups:
            self.add_binding_group(group)
        self.broadcast_tables = {t.lower() for t in broadcast_tables}
        self._default_data_source = default_data_source

    # -- freeze / copy (versioned metadata contexts) -------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen

    def freeze(self) -> "ShardingRule":
        """Make this rule immutable; mutators raise from now on."""
        self._frozen = True
        return self

    def copy(self) -> "ShardingRule":
        """A mutable shallow copy (TableRule objects are immutable in
        practice and stay shared, keeping route-memo identity for
        untouched tables)."""
        clone = ShardingRule.__new__(ShardingRule)
        clone._frozen = False
        clone._table_rules = dict(self._table_rules)
        clone.binding_groups = [set(group) for group in self.binding_groups]
        clone.broadcast_tables = set(self.broadcast_tables)
        clone._default_data_source = self._default_data_source
        return clone

    def _check_mutable(self) -> None:
        if self._frozen:
            raise ShardingConfigError(
                "this ShardingRule belongs to an immutable metadata snapshot; "
                "mutate through the runtime/ContextManager (copy-on-write)"
            )

    @property
    def default_data_source(self) -> str | None:
        return self._default_data_source

    @default_data_source.setter
    def default_data_source(self, name: str | None) -> None:
        self._check_mutable()
        self._default_data_source = name

    # -- mutation (used by DistSQL RDL) --------------------------------------

    def add_table_rule(self, rule: TableRule) -> None:
        self._check_mutable()
        self._table_rules[rule.logic_table.lower()] = rule

    def drop_table_rule(self, logic_table: str) -> None:
        self._check_mutable()
        key = logic_table.lower()
        if key not in self._table_rules:
            raise ShardingConfigError(f"no sharding rule for table {logic_table!r}")
        del self._table_rules[key]
        self.binding_groups = [
            g for g in (group - {key} for group in self.binding_groups) if len(g) > 1
        ]

    def add_binding_group(self, tables: Sequence[str]) -> None:
        self._check_mutable()
        group = {t.lower() for t in tables}
        if len(group) < 2:
            raise ShardingConfigError("a binding group needs at least two tables")
        missing = [t for t in group if t not in self._table_rules]
        if missing:
            raise ShardingConfigError(f"binding group references unsharded tables {missing}")
        sizes = {len(self._table_rules[t].data_nodes) for t in group}
        if len(sizes) != 1:
            raise ShardingConfigError("binding tables must have the same number of data nodes")
        self.binding_groups.append(group)

    def add_broadcast_table(self, table: str) -> None:
        self._check_mutable()
        self.broadcast_tables.add(table.lower())

    # -- queries -------------------------------------------------------------

    def table_rule(self, logic_table: str) -> TableRule:
        try:
            return self._table_rules[logic_table.lower()]
        except KeyError:
            raise ShardingConfigError(f"no sharding rule for table {logic_table!r}") from None

    def is_sharded(self, table: str) -> bool:
        return table.lower() in self._table_rules

    def is_broadcast(self, table: str) -> bool:
        return table.lower() in self.broadcast_tables

    def table_rules(self) -> list[TableRule]:
        return list(self._table_rules.values())

    def logic_tables(self) -> list[str]:
        return [rule.logic_table for rule in self._table_rules.values()]

    def are_binding(self, tables: Sequence[str]) -> bool:
        """True if every table is sharded and all share one binding group."""
        lowered = {t.lower() for t in tables}
        if len(lowered) < 2:
            return True
        for group in self.binding_groups:
            if lowered <= group:
                return True
        return False

    def binding_partner_node(self, primary: TableRule, node: DataNode, partner: TableRule) -> DataNode:
        """The partner table's data node aligned with the primary's node."""
        return partner.data_nodes[primary.node_index(node)]

    def all_data_sources(self) -> list[str]:
        seen: dict[str, None] = {}
        if self.default_data_source:
            seen.setdefault(self.default_data_source)
        for rule in self._table_rules.values():
            for name in rule.data_source_names:
                seen.setdefault(name)
        return list(seen)

    def sharding_columns_of(self, table: str) -> set[str]:
        if not self.is_sharded(table):
            return set()
        return self.table_rule(table).sharding_columns
