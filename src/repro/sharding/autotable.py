"""AutoTable strategy (Section V-A of the paper).

Traditionally the DBA creates physical tables by hand and then writes
sharding rules that reference them. AutoTable inverts this: the user names
the resources and the shard count; ShardingSphere computes the data
distribution, creates the physical tables in the underlying data sources
and binds logic to actual tables automatically.

``build_auto_table_rule`` computes the distribution (round-robin across
resources, as upstream); ``create_physical_tables`` materializes the
actual tables from the logic table's schema.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..exceptions import ShardingConfigError
from ..sql import ast
from ..storage import DataSource, TableSchema
from .algorithms import create_algorithm
from .keygen import create_key_generator
from .rule import DataNode, KeyGenerateConfig, StandardShardingStrategy, TableRule


def compute_data_nodes(logic_table: str, resources: Sequence[str], sharding_count: int) -> list[DataNode]:
    """Round-robin shard placement: shard i -> resources[i % len(resources)]."""
    if sharding_count < 1:
        raise ShardingConfigError("sharding-count must be >= 1")
    if not resources:
        raise ShardingConfigError("AutoTable needs at least one resource")
    return [
        DataNode(resources[i % len(resources)], f"{logic_table}_{i}")
        for i in range(sharding_count)
    ]


def build_auto_table_rule(
    logic_table: str,
    resources: Sequence[str],
    sharding_column: str,
    algorithm_type: str = "HASH_MOD",
    properties: Mapping[str, Any] | None = None,
    key_generate_column: str | None = None,
    key_generator_type: str = "SNOWFLAKE",
) -> TableRule:
    """Build the TableRule for an AutoTable definition.

    ``properties`` must carry the algorithm's knobs (e.g. "sharding-count").
    The returned rule routes in a single step over actual table names; the
    table->resource assignment is the round-robin layout above.
    """
    props = dict(properties or {})
    algorithm = create_algorithm(algorithm_type, props)
    count = getattr(algorithm, "sharding_count", None)
    if count is None:
        count = int(props.get("sharding-count", 0))
    if count < 1:
        raise ShardingConfigError(
            f"AutoTable with algorithm {algorithm_type!r} needs a 'sharding-count'"
        )
    nodes = compute_data_nodes(logic_table, list(resources), count)
    key_generate = None
    if key_generate_column:
        key_generate = KeyGenerateConfig(
            column=key_generate_column,
            generator=create_key_generator(key_generator_type),
        )
    return TableRule(
        logic_table,
        nodes,
        table_strategy=StandardShardingStrategy(sharding_column, algorithm),
        key_generate=key_generate,
        auto=True,
    )


def create_physical_tables(
    rule: TableRule,
    schema: TableSchema | ast.CreateTableStatement,
    data_sources: Mapping[str, DataSource],
    if_not_exists: bool = True,
) -> list[DataNode]:
    """Create every actual table of ``rule`` in its data source.

    ``schema`` is the logic table's definition; each actual table gets a
    renamed clone. Returns the nodes that were (or already were) created.
    """
    if isinstance(schema, ast.CreateTableStatement):
        schema = TableSchema.from_ast(schema)
    created: list[DataNode] = []
    for node in rule.data_nodes:
        try:
            source = data_sources[node.data_source]
        except KeyError:
            raise ShardingConfigError(
                f"rule for {rule.logic_table!r} references unknown resource {node.data_source!r}"
            ) from None
        source.database.create_table(schema.clone_renamed(node.table), if_not_exists=if_not_exists)
        created.append(node)
    return created
