"""Distributed key generators.

Sharded INSERTs cannot rely on per-table AUTO_INCREMENT (two shards would
hand out the same id), so ShardingSphere generates keys in the middleware.
We provide the same two presets as upstream: SNOWFLAKE (time-ordered
64-bit ids) and UUID, behind an SPI-style registry.
"""

from __future__ import annotations

import abc
import threading
import time
import uuid
from typing import Any

from ..exceptions import ShardingConfigError, UnknownAlgorithmError

#: Snowflake epoch used by ShardingSphere (2016-11-01 00:00:00 UTC).
SNOWFLAKE_EPOCH_MS = 1477958400000

_WORKER_ID_BITS = 10
_SEQUENCE_BITS = 12
_MAX_WORKER_ID = (1 << _WORKER_ID_BITS) - 1
_SEQUENCE_MASK = (1 << _SEQUENCE_BITS) - 1


class KeyGenerator(abc.ABC):
    """Base class for distributed key generators."""

    type_name: str = ""

    def __init__(self, props: dict[str, Any] | None = None):
        self.props = dict(props or {})

    @abc.abstractmethod
    def next_key(self) -> Any:
        """Generate the next key."""


class SnowflakeKeyGenerator(KeyGenerator):
    """64-bit ids: 41-bit ms timestamp | 10-bit worker id | 12-bit sequence.

    Monotonic per worker; tolerates small clock regressions by waiting.
    """

    type_name = "SNOWFLAKE"

    def __init__(self, props: dict[str, Any] | None = None):
        super().__init__(props)
        self.worker_id = int(self.props.get("worker-id", 0))
        if not 0 <= self.worker_id <= _MAX_WORKER_ID:
            raise ShardingConfigError(f"worker-id must be in [0, {_MAX_WORKER_ID}]")
        self._lock = threading.Lock()
        self._last_ms = -1
        self._sequence = 0

    @staticmethod
    def _now_ms() -> int:
        return int(time.time() * 1000)

    def next_key(self) -> int:
        with self._lock:
            now = self._now_ms()
            if now < self._last_ms:
                # Clock went backwards: spin until it catches up.
                while now < self._last_ms:
                    time.sleep(0.0005)
                    now = self._now_ms()
            if now == self._last_ms:
                self._sequence = (self._sequence + 1) & _SEQUENCE_MASK
                if self._sequence == 0:
                    while now <= self._last_ms:
                        now = self._now_ms()
            else:
                self._sequence = 0
            self._last_ms = now
            timestamp = now - SNOWFLAKE_EPOCH_MS
            return (timestamp << (_WORKER_ID_BITS + _SEQUENCE_BITS)) | (
                self.worker_id << _SEQUENCE_BITS
            ) | self._sequence

    @staticmethod
    def extract_timestamp_ms(key: int) -> int:
        """Recover the millisecond timestamp embedded in a snowflake id."""
        return (key >> (_WORKER_ID_BITS + _SEQUENCE_BITS)) + SNOWFLAKE_EPOCH_MS


class UUIDKeyGenerator(KeyGenerator):
    """Random 32-hex-char keys (UUID4 without dashes, as upstream)."""

    type_name = "UUID"

    def next_key(self) -> str:
        return uuid.uuid4().hex


_GENERATORS: dict[str, type[KeyGenerator]] = {}


def register_key_generator(cls: type[KeyGenerator]) -> type[KeyGenerator]:
    """Register a key generator class (SPI analogue); decorator-friendly."""
    if not cls.type_name:
        raise ShardingConfigError(f"{cls.__name__} must define a type_name")
    _GENERATORS[cls.type_name.upper()] = cls
    return cls


def create_key_generator(type_name: str, props: dict[str, Any] | None = None) -> KeyGenerator:
    try:
        cls = _GENERATORS[type_name.upper()]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown key generator {type_name!r}; known: {sorted(_GENERATORS)}"
        ) from None
    return cls(props)


def available_key_generators() -> list[str]:
    return sorted(_GENERATORS)


register_key_generator(SnowflakeKeyGenerator)
register_key_generator(UUIDKeyGenerator)
