"""Compiled storage plans: differential, invalidation and hot-path tests.

The differential suite runs every statement against *twin* data sources —
one with the storage plan cache enabled (compiled closure pipelines), one
with it disabled (the tree-walking interpreter) — and asserts identical
results. Each statement is executed twice on both twins so the compiled
side exercises both the compile (miss) and the cached (hit) path.
"""

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import SQLEngine
from repro.engine.federation import _RowBudget
from repro.exceptions import UnsupportedSQLError
from repro.sharding import make_vertical_sharding
from repro.sql import ast, parse
from repro.storage import DataSource

SCHEMA_T = (
    "CREATE TABLE t (id INT PRIMARY KEY, grp INT, val FLOAT, name VARCHAR(32), flag INT)"
)
SCHEMA_U = "CREATE TABLE u (uid INT PRIMARY KEY, grp INT, tag VARCHAR(16))"
U_ROWS = [(1, 0, "x"), (2, 1, "y"), (3, 1, "z"), (4, 3, "w"), (5, None, "q")]

DIFF_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_twins(rows):
    """Two identical data sources; the second never compiles plans."""
    twins = []
    for tag in ("compiled", "interpreted"):
        ds = DataSource(f"twin_{tag}")
        if tag == "interpreted":
            ds.database.plan_cache.enabled = False
        ds.execute(SCHEMA_T)
        ds.execute("CREATE INDEX idx_grp ON t (grp)")
        ds.execute("CREATE INDEX idx_val ON t (val)")
        ds.execute(SCHEMA_U)
        conn = ds.connect()
        if rows:
            conn.cursor().executemany(
                "INSERT INTO t (id, grp, val, name, flag) VALUES (?, ?, ?, ?, ?)", rows
            )
        conn.cursor().executemany("INSERT INTO u (uid, grp, tag) VALUES (?, ?, ?)", U_ROWS)
        twins.append((ds, conn))
    return twins


def run_pair(twins, sql, params=()):
    """Execute on both twins; return [(rows, rowcount), (rows, rowcount)]."""
    outs = []
    for _ds, conn in twins:
        cur = conn.execute(sql, params)
        outs.append((cur.fetchall(), cur.rowcount))
    return outs


def assert_twins_agree(twins, sql, params=()):
    """Run twice on both twins (compile, then hit) and compare everything."""
    first = run_pair(twins, sql, params)
    second = run_pair(twins, sql, params)
    assert first[0] == first[1], sql
    assert second[0] == second[1], sql
    assert first[0] == second[0], sql  # SELECTs must be repeatable


def table_contents(twins):
    return run_pair(twins, "SELECT * FROM t ORDER BY id")


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

grp_s = st.one_of(st.none(), st.integers(0, 5))
val_s = st.one_of(st.none(), st.floats(-50, 50, allow_nan=False, width=32))
name_s = st.one_of(st.none(), st.sampled_from(["ann", "bo", "che", "dee", "Ann", "a%b"]))
flag_s = st.integers(0, 1)

rows_s = st.lists(st.tuples(grp_s, val_s, name_s, flag_s), max_size=25).map(
    lambda raw: [(i, g, v, n, f) for i, (g, v, n, f) in enumerate(raw)]
)

where_s = st.one_of(
    st.just(("", ())),
    st.builds(lambda k: (f"WHERE id = {k}", ()), st.integers(0, 30)),
    st.builds(lambda k: ("WHERE id = ?", (k,)), st.integers(0, 30)),
    st.builds(
        lambda a, b: (f"WHERE id BETWEEN {min(a, b)} AND {max(a, b)}", ()),
        st.integers(0, 30),
        st.integers(0, 30),
    ),
    st.builds(lambda g: (f"WHERE grp = {g}", ()), st.integers(0, 5)),
    st.builds(lambda g: ("WHERE grp < ?", (g,)), st.integers(0, 5)),
    st.builds(lambda v: (f"WHERE val >= {v}", ()), st.integers(-40, 40)),
    st.just(("WHERE name IS NULL", ())),
    st.just(("WHERE name IS NOT NULL AND grp IS NOT NULL", ())),
    st.just(("WHERE name LIKE 'a%'", ())),
    st.builds(
        lambda g, f: (f"WHERE grp = {g} AND flag = {f}", ()),
        st.integers(0, 5),
        flag_s,
    ),
    st.builds(
        lambda g, f: (f"WHERE grp = {g} OR flag = {f}", ()),
        st.integers(0, 5),
        flag_s,
    ),
    st.builds(
        lambda ks: ("WHERE id IN (%s)" % ", ".join(map(str, ks)), ()),
        st.lists(st.integers(0, 30), min_size=1, max_size=5),
    ),
    st.just(("WHERE NOT (flag = 1)", ())),
    st.builds(lambda v: (f"WHERE val * 2 > {v}", ()), st.integers(-40, 40)),
)

select_items_s = st.sampled_from(
    [
        "*",
        "id, grp, val",
        "id, val * 2 AS dv",
        "id, COALESCE(grp, -1) AS g",
        "name, id",
    ]
)

# Every ORDER BY ends in the unique ``id`` so row order is total and the
# compiled and interpreted outputs can be compared exactly.
order_s = st.sampled_from(
    [
        "",
        "ORDER BY id",
        "ORDER BY id DESC",
        "ORDER BY grp, id",
        "ORDER BY val DESC, id",
        "ORDER BY grp DESC, val ASC, id",
        "ORDER BY name, id",
    ]
)

limit_s = st.sampled_from(["", "LIMIT 5", "LIMIT 3 OFFSET 2", "LIMIT 0"])


# ---------------------------------------------------------------------------
# Differential suite (property-based)
# ---------------------------------------------------------------------------


class TestDifferentialSelect:
    @DIFF_SETTINGS
    @given(rows=rows_s, items=select_items_s, where=where_s, order=order_s, limit=limit_s)
    def test_select_matches_interpreter(self, rows, items, where, order, limit):
        twins = make_twins(rows)
        cond, params = where
        sql = f"SELECT {items} FROM t {cond} {order} {limit}".strip()
        assert_twins_agree(twins, sql, params)

    @DIFF_SETTINGS
    @given(rows=rows_s, where=where_s)
    def test_grouped_aggregates_match_interpreter(self, rows, where):
        twins = make_twins(rows)
        cond, params = where
        sql = (
            "SELECT grp, COUNT(*) AS c, SUM(val) AS s, MIN(val) AS mn, "
            f"MAX(val) AS mx, AVG(val) AS av FROM t {cond} GROUP BY grp ORDER BY grp"
        )
        assert_twins_agree(twins, sql, params)
        having = (
            f"SELECT grp, COUNT(*) AS c FROM t {cond} GROUP BY grp "
            "HAVING COUNT(*) > 1 ORDER BY grp"
        )
        assert_twins_agree(twins, having, params)

    @DIFF_SETTINGS
    @given(rows=rows_s, where=where_s)
    def test_global_aggregates_match_interpreter(self, rows, where):
        twins = make_twins(rows)
        cond, params = where
        sql = f"SELECT COUNT(*), COUNT(val), AVG(val), MAX(name) FROM t {cond}"
        assert_twins_agree(twins, sql, params)

    @DIFF_SETTINGS
    @given(rows=rows_s)
    def test_distinct_matches_interpreter(self, rows):
        twins = make_twins(rows)
        assert_twins_agree(twins, "SELECT DISTINCT grp, flag FROM t ORDER BY grp, flag")
        assert_twins_agree(twins, "SELECT DISTINCT grp FROM t WHERE flag = 1 ORDER BY grp")

    @DIFF_SETTINGS
    @given(rows=rows_s)
    def test_joins_match_interpreter(self, rows):
        twins = make_twins(rows)
        for sql in (
            "SELECT t.id, u.uid, u.tag FROM t JOIN u ON t.grp = u.grp "
            "ORDER BY t.id, u.uid",
            "SELECT t.id, u.uid, u.tag FROM t LEFT JOIN u ON t.grp = u.grp "
            "ORDER BY t.id, u.uid",
            "SELECT t.id, u.uid FROM t JOIN u ON t.grp = u.grp AND u.uid > 1 "
            "ORDER BY t.id, u.uid",
            "SELECT t.id, u.uid FROM t JOIN u ON t.grp < u.grp ORDER BY t.id, u.uid",
            "SELECT u.grp, COUNT(*) AS c FROM t JOIN u ON t.grp = u.grp "
            "GROUP BY u.grp ORDER BY u.grp",
        ):
            assert_twins_agree(twins, sql)


class TestDifferentialDML:
    @DIFF_SETTINGS
    @given(
        rows=rows_s,
        where=where_s,
        setter=st.sampled_from(
            [
                ("SET val = val + 1", ()),
                ("SET name = 'zz'", ()),
                ("SET flag = 1 - flag", ()),
                ("SET val = ?, name = ?", (9.5, "bound")),
            ]
        ),
    )
    def test_update_matches_interpreter(self, rows, where, setter):
        twins = make_twins(rows)
        assignment, set_params = setter
        cond, where_params = where
        sql = f"UPDATE t {assignment} {cond}".strip()
        params = tuple(set_params) + tuple(where_params)
        first = run_pair(twins, sql, params)
        second = run_pair(twins, sql, params)
        assert first[0][1] == first[1][1], sql  # rowcounts agree
        assert second[0][1] == second[1][1], sql
        state = table_contents(twins)
        assert state[0] == state[1], sql

    @DIFF_SETTINGS
    @given(rows=rows_s, where=where_s)
    def test_delete_matches_interpreter(self, rows, where):
        twins = make_twins(rows)
        cond, params = where
        sql = f"DELETE FROM t {cond}".strip()
        first = run_pair(twins, sql, params)
        assert first[0][1] == first[1][1], sql
        state = table_contents(twins)
        assert state[0] == state[1], sql


class TestOrderPreservingAccess:
    def test_index_order_skips_sort_but_matches_multiset(self):
        rows = [(i, i % 3, float(i), None, 0) for i in range(12)]
        twins = make_twins(rows)
        sql = "SELECT grp, id FROM t ORDER BY grp"
        outs = [run_pair(twins, sql)[i][0] for i in (0, 1)]
        # Tie order within equal grp keys may differ; the multiset and the
        # key sequence must not.
        assert sorted(outs[0]) == sorted(outs[1])
        assert [r[0] for r in outs[0]] == [r[0] for r in outs[1]]
        keys = [r[0] for r in outs[0]]
        assert keys == sorted(keys)

    def test_desc_single_key(self):
        rows = [(i, None, float(i % 4), None, 0) for i in range(10)]
        twins = make_twins(rows)
        sql = "SELECT val, id FROM t WHERE val IS NOT NULL ORDER BY val DESC"
        outs = [run_pair(twins, sql)[i][0] for i in (0, 1)]
        assert sorted(outs[0]) == sorted(outs[1])
        assert [r[0] for r in outs[0]] == [r[0] for r in outs[1]]


# ---------------------------------------------------------------------------
# Cache behaviour: hits, invalidation, no stale plans
# ---------------------------------------------------------------------------


def fresh_source(name="inval"):
    ds = DataSource(name)
    ds.execute("CREATE TABLE t (a INT PRIMARY KEY, b VARCHAR(16))")
    conn = ds.connect()
    conn.cursor().executemany(
        "INSERT INTO t (a, b) VALUES (?, ?)", [(1, "one"), (2, "two"), (3, "three")]
    )
    # The parameterized load INSERT compiles too (PR 8); zero the counters
    # so the lifecycle assertions below only see their own statements.
    cache = ds.database.plan_cache
    cache.hits = cache.misses = cache.bypasses = 0
    return ds, conn


class TestPlanCacheLifecycle:
    def test_miss_then_hit(self):
        ds, conn = fresh_source()
        cache = ds.database.plan_cache
        sql = "SELECT b FROM t WHERE a = ?"
        assert conn.execute(sql, (1,)).fetchall() == [("one",)]
        assert conn.execute(sql, (2,)).fetchall() == [("two",)]
        assert cache.misses == 1
        assert cache.hits == 1

    def test_create_index_invalidates(self):
        ds, conn = fresh_source()
        cache = ds.database.plan_cache
        sql = "SELECT b FROM t WHERE a = 2"
        conn.execute(sql)
        conn.execute(sql)
        assert cache.hits == 1
        before = cache.invalidations
        conn.execute("CREATE INDEX idx_b ON t (b)")
        assert conn.execute(sql).fetchall() == [("two",)]
        assert cache.invalidations == before + 1

    def test_drop_create_reordered_columns_no_stale_offsets(self):
        ds, conn = fresh_source()
        cache = ds.database.plan_cache
        sql = "SELECT * FROM t WHERE a = 1"
        conn.execute(sql)
        conn.execute(sql)
        assert conn.execute(sql).fetchall() == [(1, "one")]
        # Recreate with the column order flipped: a compiled plan pinned to
        # the old schema would project swapped offsets.
        conn.execute("DROP TABLE t")
        conn.execute("CREATE TABLE t (b VARCHAR(16), a INT PRIMARY KEY)")
        conn.execute("INSERT INTO t (b, a) VALUES ('uno', 1)")
        before = cache.invalidations
        assert conn.execute(sql).fetchall() == [("uno", 1)]
        assert cache.invalidations == before + 1

    def test_truncate_invalidates(self):
        ds, conn = fresh_source()
        cache = ds.database.plan_cache
        sql = "SELECT COUNT(*) FROM t"
        assert conn.execute(sql).fetchall() == [(3,)]
        assert conn.execute(sql).fetchall() == [(3,)]
        before = cache.invalidations
        conn.execute("TRUNCATE TABLE t")
        assert conn.execute(sql).fetchall() == [(0,)]
        assert cache.invalidations == before + 1

    def test_uncompilable_statement_bypasses(self):
        ds, conn = fresh_source()
        cache = ds.database.plan_cache
        # No FROM clause: not compilable, negative-cached, interpreter runs.
        assert conn.execute("SELECT 1 + 1").fetchall() == [(2,)]
        before = cache.bypasses
        assert conn.execute("SELECT 1 + 1").fetchall() == [(2,)]
        assert cache.bypasses == before + 1
        assert cache.hits == 0

    def test_ast_statement_promoted_on_reuse(self):
        ds, conn = fresh_source()
        cache = ds.database.plan_cache
        stmt = parse("SELECT b FROM t WHERE a = 3")
        # First sight of an anonymous AST: marked, not compiled.
        assert conn.execute(stmt).fetchall() == [("three",)]
        assert cache.misses == 0
        # Second sight proves reuse; the plan compiles and then hits.
        assert conn.execute(stmt).fetchall() == [("three",)]
        assert cache.misses == 1
        assert conn.execute(stmt).fetchall() == [("three",)]
        assert cache.hits == 1

    def test_disabled_cache_reports_off(self):
        ds, conn = fresh_source()
        ds.database.plan_cache.enabled = False
        sql = "SELECT b FROM t WHERE a = 1"
        assert conn.execute(sql).fetchall() == [("one",)]
        stats = ds.database.plan_cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0


class TestExecutemany:
    def test_parses_once_and_accumulates_rowcount(self, monkeypatch):
        import repro.storage.connection as conn_mod

        ds = DataSource("many")
        ds.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
        conn = ds.connect()
        calls = {"n": 0}
        real_parse = conn_mod.parse

        def counting_parse(sql):
            calls["n"] += 1
            return real_parse(sql)

        monkeypatch.setattr(conn_mod, "parse", counting_parse)
        cur = conn.cursor()
        cur.executemany("INSERT INTO t (a, b) VALUES (?, ?)", [(1, 1), (2, 2), (3, 3)])
        assert calls["n"] == 1
        assert cur.rowcount == 3

        cur = conn.cursor()
        cur.executemany("UPDATE t SET b = b + 1 WHERE a >= ?", [(1,), (3,)])
        assert cur.rowcount == 4  # 3 rows + 1 row, cumulative

    def test_update_compiles_once(self):
        ds = DataSource("many2")
        ds.execute("CREATE TABLE t (a INT PRIMARY KEY, b INT)")
        conn = ds.connect()
        conn.cursor().executemany("INSERT INTO t (a, b) VALUES (?, ?)", [(i, 0) for i in range(6)])
        cache = ds.database.plan_cache
        cur = conn.cursor()
        cur.executemany("UPDATE t SET b = ? WHERE a = ?", [(i * 10, i) for i in range(6)])
        assert cur.rowcount == 6
        # one miss for the load INSERT plan + one for the UPDATE plan
        assert cache.misses == 2
        assert cache.hits == 5
        assert conn.execute("SELECT b FROM t ORDER BY a").fetchall() == [
            (0,), (10,), (20,), (30,), (40,), (50,)
        ]

    def test_empty_sequence(self):
        ds = DataSource("many3")
        ds.execute("CREATE TABLE t (a INT PRIMARY KEY)")
        cur = ds.connect().cursor()
        cur.executemany("INSERT INTO t (a) VALUES (?)", [])
        assert cur.rowcount == 0
        assert cur.fetchall() == []


# ---------------------------------------------------------------------------
# Hot path: zero AST traversals end to end (acceptance criterion)
# ---------------------------------------------------------------------------


class TestHotPathZeroAST:
    def test_fully_hot_prepared_statement_never_walks_ast(self, seeded_engine, monkeypatch):
        sql = "SELECT name FROM t_user WHERE uid = ?"
        # Warm every layer: engine template cache, route memo, storage plan.
        for _ in range(3):
            assert seeded_engine.execute(sql, (3,)).fetchall() == [("carol",)]

        import repro.storage.executor as storage_executor
        import repro.storage.plans as storage_plans

        walks = {"n": 0}
        real_walk = ast.Expression.walk

        def counting_walk(self):
            walks["n"] += 1
            return real_walk(self)

        def boom(*args, **kwargs):  # pragma: no cover - only fires on regression
            raise AssertionError("hot path fell back to the AST interpreter")

        monkeypatch.setattr(ast.Expression, "walk", counting_walk)
        monkeypatch.setattr(storage_plans, "execute_statement", boom)
        monkeypatch.setattr(storage_executor, "evaluate", boom)

        engine_hits = seeded_engine.plan_cache.hits
        storage_hits = sum(
            ds.database.plan_cache.hits for ds in seeded_engine.data_sources.values()
        )
        result = seeded_engine.execute(sql, (3,))
        assert result.fetchall() == [("carol",)]
        assert walks["n"] == 0
        assert seeded_engine.plan_cache.hits == engine_hits + 1
        assert (
            sum(ds.database.plan_cache.hits for ds in seeded_engine.data_sources.values())
            == storage_hits + 1
        )


# ---------------------------------------------------------------------------
# Federation: parallel materialization under an exact row budget
# ---------------------------------------------------------------------------


class TestFederationBudget:
    def test_row_budget_is_exact_under_threads(self):
        budget = _RowBudget(1000)
        successes = []

        def worker():
            ok = 0
            for _ in range(200):
                try:
                    budget.charge()
                except UnsupportedSQLError:
                    break
                ok += 1
            successes.append(ok)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(successes) == 1000

    @pytest.fixture
    def split_fleet(self):
        sources = {"ds_a": DataSource("ds_a"), "ds_b": DataSource("ds_b")}
        sources["ds_a"].execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(32))")
        sources["ds_b"].execute("CREATE TABLE t_order (oid INT PRIMARY KEY, uid INT, amount FLOAT)")
        sources["ds_a"].execute(
            "INSERT INTO t_user (uid, name) VALUES (1, 'ann'), (2, 'bo'), (3, 'che')"
        )
        sources["ds_b"].execute(
            "INSERT INTO t_order (oid, uid, amount) VALUES "
            "(10, 1, 4.0), (11, 2, 6.0), (12, 1, 1.5)"
        )
        rule = make_vertical_sharding({"t_user": "ds_a", "t_order": "ds_b"})
        engine = SQLEngine(sources, rule)
        yield engine
        engine.close()

    def test_parallel_federation_results_unchanged(self, split_fleet):
        result = split_fleet.execute(
            "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid "
            "ORDER BY o.amount DESC"
        )
        assert result.route_type == "federation"
        assert result.fetchall() == [("bo", 6.0), ("ann", 4.0), ("ann", 1.5)]

    def test_budget_enforced_across_parallel_pulls(self, split_fleet, monkeypatch):
        import repro.engine.federation as federation

        # 3 user rows + 3 order rows = 6 materialized rows total.
        monkeypatch.setattr(federation, "MAX_FEDERATION_ROWS", 5)
        with pytest.raises(UnsupportedSQLError, match="materialize more than"):
            split_fleet.execute(
                "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid"
            )

        monkeypatch.setattr(federation, "MAX_FEDERATION_ROWS", 6)
        result = split_fleet.execute(
            "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid "
            "ORDER BY o.amount"
        )
        assert result.fetchall() == [("ann", 1.5), ("ann", 4.0), ("bo", 6.0)]
