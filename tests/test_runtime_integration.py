"""Integration tests: runtime + governor + transactions + features together."""

import pytest

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.exceptions import DistSQLError
from repro.governor import ConfigCenter
from repro.transaction import TransactionType


@pytest.fixture
def runtime():
    rt = ShardingRuntime()
    yield rt
    rt.close()


class TestRuntimeResources:
    def test_register_resource_visible_to_engine(self, runtime):
        runtime.register_resource("dsX", {"dialect": "PostgreSQL"})
        assert "dsX" in runtime.engine.data_sources
        assert runtime.engine.data_sources["dsX"].dialect.name == "PostgreSQL"

    def test_register_sets_default_source(self, runtime):
        assert runtime.rule.default_data_source is None
        runtime.register_resource("first")
        assert runtime.rule.default_data_source == "first"

    def test_unregister_clears_default(self, runtime):
        runtime.register_resource("a")
        runtime.register_resource("b")
        runtime.unregister_resource("a")
        assert runtime.rule.default_data_source == "b"

    def test_resources_registered_in_governor(self, runtime):
        runtime.register_resource("dsY")
        assert "dsY" in runtime.config_center.data_source_names()

    def test_add_prebuilt_resource(self, runtime):
        from repro.storage import DataSource

        runtime.add_resource("pre", DataSource("pre"))
        assert runtime.data_sources["pre"].name == "pre"


class TestRuntimeVariables:
    def test_transaction_type_flows_to_manager(self, runtime):
        runtime.set_variable("transaction_type", "base")
        assert runtime.transaction_manager.transaction_type is TransactionType.BASE
        assert runtime.variables["transaction_type"] == "BASE"

    def test_max_connections_flows_to_executor(self, runtime):
        runtime.set_variable("max_connections_per_query", "7")
        assert runtime.engine.executor.max_connections_per_query == 7

    def test_invalid_max_connections(self, runtime):
        with pytest.raises(DistSQLError):
            runtime.set_variable("max_connections_per_query", 0)

    def test_variables_persisted_to_governor(self, runtime):
        runtime.set_variable("transaction_type", "XA")
        assert runtime.config_center.get_prop("transaction_type") == "XA"


class TestSharedGovernor:
    def test_jdbc_and_proxy_share_one_config_center(self):
        """The paper: deploy JDBC and Proxy together sharing one Governor."""
        config = ConfigCenter()
        jdbc_runtime = ShardingRuntime(config_center=config)
        jdbc_runtime.register_resource("shared_ds")
        proxy_runtime = ShardingRuntime(config_center=config)
        # the proxy-side runtime sees the JDBC-side registration
        assert "shared_ds" in config.data_source_names()
        jdbc_runtime.close()
        proxy_runtime.close()

    def test_rule_change_visible_through_watch(self, runtime):
        seen = []
        runtime.config_center.watch_rules("sharding", lambda e, p, v: seen.append(v))
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("REGISTER RESOURCE w0")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_w (RESOURCES(w0), SHARDING_COLUMN=k, "
            "PROPERTIES('sharding-count'=2))"
        )
        assert seen == ["t_w"]
        conn.close()


class TestEndToEndLifecycle:
    def test_full_lifecycle(self, runtime):
        """Configure, create, write, transact, scale the variables, query."""
        ds = ShardingDataSource(runtime)
        conn = ds.get_connection()
        conn.execute("REGISTER RESOURCE e0, e1, e2")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_evt (RESOURCES(e0, e1, e2), "
            "SHARDING_COLUMN=eid, TYPE=mod, PROPERTIES('sharding-count'=6), "
            "KEY_GENERATE_COLUMN=seq, KEY_GENERATOR=snowflake)"
        )
        conn.execute(
            "CREATE TABLE t_evt (eid INT NOT NULL, seq BIGINT, payload VARCHAR(64), "
            "PRIMARY KEY (eid))"
        )
        for i in range(30):
            conn.execute("INSERT INTO t_evt (eid, payload) VALUES (?, ?)", (i, f"p{i}"))

        assert conn.execute("SELECT COUNT(*) FROM t_evt").fetchall() == [(30,)]

        # every shard holds an equal slice (mod 6 over 0..29)
        per_node = []
        for source in runtime.data_sources.values():
            for table in source.database.table_names():
                per_node.append(source.database.table(table).row_count)
        assert per_node == [5] * 6

        conn.execute("SET VARIABLE transaction_type = XA")
        conn.begin()
        conn.execute("UPDATE t_evt SET payload = 'changed' WHERE eid IN (0, 1, 2)")
        conn.commit()
        rows = conn.execute(
            "SELECT COUNT(*) FROM t_evt WHERE payload = 'changed'"
        ).fetchall()
        assert rows == [(3,)]

        preview = conn.execute("PREVIEW SELECT * FROM t_evt WHERE eid = 7").fetchall()
        assert preview == [("e1", "SELECT * FROM t_evt_1 WHERE eid = 7")]
        conn.close()
        ds.close()


class TestShowTablesAndHints:
    def test_show_tables_lists_logic_and_broadcast(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("REGISTER RESOURCE s0, s1")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_x (RESOURCES(s0, s1), SHARDING_COLUMN=k, "
            "PROPERTIES('sharding-count'=2))"
        )
        conn.execute("CREATE BROADCAST TABLE RULE t_dict")
        rows = conn.execute("SHOW TABLES").fetchall()
        assert ("t_x",) in rows
        assert ("t_dict",) in rows
        conn.close()

    def test_show_tables_hides_physical_shards(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("REGISTER RESOURCE s0")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_x (RESOURCES(s0), SHARDING_COLUMN=k, "
            "PROPERTIES('sharding-count'=2))"
        )
        conn.execute("CREATE TABLE t_x (k INT PRIMARY KEY)")
        rows = conn.execute("SHOW TABLES").fetchall()
        assert ("t_x",) in rows
        assert ("t_x_0",) not in rows
        conn.close()

    def test_unsupported_show_rejected(self, runtime):
        from repro.exceptions import UnsupportedSQLError

        runtime.register_resource("s0")
        conn = ShardingDataSource(runtime).get_connection()
        with pytest.raises(UnsupportedSQLError):
            conn.execute("SHOW PROCESSLIST")
        conn.close()

    def test_hint_context_manager_scopes_values(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.set_hint(1)
        with conn.hint(2, 3):
            assert conn.hint_values == [2, 3]
        assert conn.hint_values == [1]
        conn.close()


class TestGovernorRestartRecovery:
    def test_rules_survive_a_runtime_restart(self):
        """A new runtime against the same Governor replays everything."""
        config = ConfigCenter()
        first = ShardingRuntime(config_center=config)
        conn = ShardingDataSource(first).get_connection()
        conn.execute("REGISTER RESOURCE r0, r1, replica0")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_user (RESOURCES(r0, r1), "
            "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=4))"
        )
        conn.execute(
            "CREATE SHARDING TABLE RULE t_order (RESOURCES(r0, r1), "
            "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=4))"
        )
        conn.execute("CREATE SHARDING BINDING TABLE RULES (t_user, t_order)")
        conn.execute("CREATE BROADCAST TABLE RULE t_dict")
        conn.execute("CREATE READWRITE_SPLITTING RULE g (PRIMARY=r0, REPLICAS(replica0))")
        conn.execute("SET VARIABLE transaction_type = XA")
        conn.close()
        first.close()

        # "restart": a fresh runtime joins the same Governor
        second = ShardingRuntime(config_center=config)
        applied = second.load_rules_from_governor()
        assert applied >= 5
        assert second.rule.is_sharded("t_user")
        assert second.rule.are_binding(["t_user", "t_order"])
        assert second.rule.is_broadcast("t_dict")
        assert second.transaction_manager.transaction_type is TransactionType.XA
        assert second._rwsplit_feature is not None
        # and it routes identically to the first runtime's AutoTable layout
        preview = second.preview("SELECT * FROM t_user WHERE uid = 4")
        assert len(preview) == 1
        second.close()
