"""Tests for the baseline systems and the shared topology builders."""

import pytest

from repro.baselines import (
    AuroraLikeSystem,
    MiddlewareSystem,
    NewSQLSystem,
    ShardingJDBCSystem,
    ShardingProxySystem,
    SingleNodeSystem,
    make_grid_rule,
    make_grid_sharding,
    make_sources,
)
from repro.baselines.topology import RangeLevelAlgorithm, make_range_grid_rule
from repro.sharding import ShardingValue


class TestTopology:
    def test_make_sources(self):
        sources = make_sources(["a", "b"], io_channels=7)
        assert set(sources) == {"a", "b"}
        assert sources["a"].io_channels == 7

    def test_hash_grid_distributes_by_div_mod(self):
        rule = make_grid_rule("t", ["ds0", "ds1"], 3, "id")
        # id=5 -> ds 5%2=1, table (5//2)%3=2
        nodes = rule.route({"id": ShardingValue("id", values=[5])})
        assert len(nodes) == 1
        assert nodes[0].data_source == "ds1"
        assert nodes[0].table == "t_2"

    def test_hash_grid_single_source_skips_db_level(self):
        rule = make_grid_rule("t", ["ds0"], 4, "id")
        nodes = rule.route({"id": ShardingValue("id", values=[6])})
        assert nodes[0].table == "t_2"

    def test_range_grid_blocks(self):
        rule = make_range_grid_rule("t", ["ds0", "ds1"], 2, "id", key_space=100)
        # ds block = 50, table block = 25
        assert rule.route({"id": ShardingValue("id", values=[10])})[0].table == "t_0"
        assert rule.route({"id": ShardingValue("id", values=[30])})[0].table == "t_1"
        assert rule.route({"id": ShardingValue("id", values=[60])})[0].data_source == "ds1"

    def test_range_grid_prunes_ranges(self):
        rule = make_range_grid_rule("t", ["ds0", "ds1"], 2, "id", key_space=100)
        nodes = rule.route({"id": ShardingValue("id", range_=(5, 20))})
        assert len(nodes) == 1  # entirely within ds0.t_0
        nodes = rule.route({"id": ShardingValue("id", range_=(5, 30))})
        assert len(nodes) == 2

    def test_range_level_algorithm_validates(self):
        with pytest.raises(ValueError):
            RangeLevelAlgorithm(0, 2)

    def test_grid_sharding_per_table_override(self):
        rule = make_grid_sharding(
            [("a", "id"), ("b", "id", 5)], ["ds0"], tables_per_source=2
        )
        assert len(rule.table_rule("a").data_nodes) == 2
        assert len(rule.table_rule("b").data_nodes) == 5

    def test_range_layout_requires_key_space(self):
        with pytest.raises(ValueError):
            make_grid_sharding([("a", "id")], ["ds0"], 2, layout="range")


def exercise(system, create=True):
    """Common SUT contract: DDL, DML, query, transaction round trip."""
    session = system.session()
    try:
        if create:
            session.execute("CREATE TABLE t_probe (id INT PRIMARY KEY, v INT)")
        session.execute("INSERT INTO t_probe (id, v) VALUES (1, 10), (2, 20)")
        assert session.execute("SELECT v FROM t_probe WHERE id = 2") == [(20,)]
        session.begin()
        session.execute("UPDATE t_probe SET v = 99 WHERE id = 1")
        session.rollback()
        assert session.execute("SELECT v FROM t_probe WHERE id = 1") == [(10,)]
        count = session.execute("DELETE FROM t_probe WHERE id = 2")
        assert count == 1
    finally:
        session.close()


class TestSystemContracts:
    def test_single_node(self):
        with SingleNodeSystem("sn") as system:
            exercise(system)

    def test_ssj(self):
        with ShardingJDBCSystem([("t_probe", "id")], num_sources=2, tables_per_source=2) as system:
            exercise(system)

    def test_ssp_over_real_socket(self):
        with ShardingProxySystem([("t_probe", "id")], num_sources=2, tables_per_source=2) as system:
            exercise(system)

    def test_middleware(self):
        with MiddlewareSystem([("t_probe", "id")], num_sources=2, forwarding_delay=0.0) as system:
            exercise(system)

    def test_newsql_uses_xa(self):
        with NewSQLSystem([("t_probe", "id")], num_sources=2, kv_rtt=0.0) as system:
            from repro.transaction import TransactionType

            assert system.runtime.transaction_manager.transaction_type is TransactionType.XA
            exercise(system)

    def test_aurora_like(self):
        with AuroraLikeSystem(request_hop=0.0) as system:
            exercise(system)
            assert system.source.io_channels == 32

    def test_newsql_consensus_amplifies_writes(self):
        system = NewSQLSystem([("t", "id")], num_sources=1, replication_factor=3)
        base = system.runtime.data_sources["kv0"].latency
        from repro.baselines.systems import DEFAULT_LATENCY

        assert base.commit_io > DEFAULT_LATENCY.commit_io
        system.close()

    def test_sharded_systems_share_runtime_dict(self):
        system = ShardingJDBCSystem([("t", "id")], num_sources=2, tables_per_source=1)
        assert system.runtime.data_sources is system.runtime.engine.data_sources
        system.close()
