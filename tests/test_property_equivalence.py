"""Property tests: a sharded fleet must behave exactly like one database.

The paper's core promise is transparency — "use sharded databases like one
database". These tests run the same randomized workload against (a) a
single unsharded DataSource and (b) a sharded SQLEngine, and require
identical results for every query shape the engine supports.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import make_grid_sharding, make_sources
from repro.engine import SQLEngine
from repro.storage import DataSource

ROW_COUNT = 60


def build_pair(num_sources=2, tables_per_source=3, layout="hash"):
    """(reference single DB, sharded engine) over the same logical table."""
    reference = DataSource("ref")
    reference.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT)")

    sources = make_sources([f"ds{i}" for i in range(num_sources)])
    rule = make_grid_sharding(
        [("t", "id")], list(sources), tables_per_source,
        layout=layout, key_space=10_000,
    )
    engine = SQLEngine(sources, rule, max_connections_per_query=4)
    engine.execute("CREATE TABLE t (id INT PRIMARY KEY, grp INT, val INT)")
    return reference, engine


def seed(reference, engine, rows):
    values = ", ".join(f"({i}, {g}, {v})" for i, (g, v) in enumerate(rows))
    reference.execute(f"INSERT INTO t (id, grp, val) VALUES {values}")
    engine.execute(f"INSERT INTO t (id, grp, val) VALUES {values}")


rows_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=5), st.integers(min_value=-50, max_value=50)),
    min_size=ROW_COUNT, max_size=ROW_COUNT,
)


class TestQueryEquivalence:
    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rows=rows_strategy, low=st.integers(0, 59), span=st.integers(0, 30))
    def test_range_scan(self, rows, low, span):
        reference, engine = build_pair()
        seed(reference, engine, rows)
        sql = f"SELECT id, val FROM t WHERE id BETWEEN {low} AND {low + span} ORDER BY id"
        assert engine.execute(sql).fetchall() == reference.execute(sql)
        engine.close()

    @settings(max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rows=rows_strategy)
    def test_group_by_aggregates(self, rows):
        reference, engine = build_pair()
        seed(reference, engine, rows)
        sql = (
            "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val), AVG(val) "
            "FROM t GROUP BY grp ORDER BY grp"
        )
        got = engine.execute(sql).fetchall()
        expected = reference.execute(sql)
        assert len(got) == len(expected)
        for g_row, e_row in zip(got, expected):
            assert g_row[:5] == e_row[:5]
            assert g_row[5] == pytest.approx(e_row[5])
        engine.close()

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rows=rows_strategy, limit=st.integers(1, 20), offset=st.integers(0, 15))
    def test_pagination(self, rows, limit, offset):
        reference, engine = build_pair()
        seed(reference, engine, rows)
        sql = f"SELECT id FROM t ORDER BY val, id LIMIT {limit} OFFSET {offset}"
        assert engine.execute(sql).fetchall() == reference.execute(sql)
        engine.close()

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rows=rows_strategy)
    def test_distinct(self, rows):
        reference, engine = build_pair()
        seed(reference, engine, rows)
        sql = "SELECT DISTINCT grp FROM t ORDER BY grp"
        assert engine.execute(sql).fetchall() == reference.execute(sql)
        engine.close()

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rows=rows_strategy, key=st.integers(0, 59), delta=st.integers(-5, 5))
    def test_update_then_read_back(self, rows, key, delta):
        reference, engine = build_pair()
        seed(reference, engine, rows)
        update = f"UPDATE t SET val = val + {delta} WHERE id = {key}"
        assert engine.execute(update).update_count == reference.execute(update)
        check = "SELECT id, val FROM t ORDER BY id"
        assert engine.execute(check).fetchall() == reference.execute(check)
        engine.close()

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rows=rows_strategy, threshold=st.integers(-50, 50))
    def test_delete_predicate(self, rows, threshold):
        reference, engine = build_pair()
        seed(reference, engine, rows)
        delete = f"DELETE FROM t WHERE val < {threshold}"
        assert engine.execute(delete).update_count == reference.execute(delete)
        check = "SELECT COUNT(*), SUM(val) FROM t"
        assert engine.execute(check).fetchall() == reference.execute(check)
        engine.close()

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(rows=rows_strategy, ids=st.lists(st.integers(0, 59), min_size=1, max_size=6, unique=True))
    def test_in_lookup_both_layouts(self, rows, ids):
        for layout in ("hash", "range"):
            reference, engine = build_pair(layout=layout)
            seed(reference, engine, rows)
            rendered = ", ".join(str(i) for i in ids)
            sql = f"SELECT id, grp FROM t WHERE id IN ({rendered}) ORDER BY id"
            assert engine.execute(sql).fetchall() == reference.execute(sql)
            engine.close()


class TestPlacementInvariants:
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(ids=st.lists(st.integers(0, 9999), min_size=1, max_size=40, unique=True),
           layout=st.sampled_from(["hash", "range"]))
    def test_each_row_lands_in_exactly_one_node(self, ids, layout):
        sources = make_sources(["ds0", "ds1", "ds2"])
        rule = make_grid_sharding([("t", "id")], list(sources), 4,
                                  layout=layout, key_space=10_000)
        engine = SQLEngine(sources, rule, max_connections_per_query=4)
        engine.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        values = ", ".join(f"({i}, 1)" for i in ids)
        engine.execute(f"INSERT INTO t (id, v) VALUES {values}")
        total = 0
        for source in sources.values():
            for table in source.database.table_names():
                total += source.database.table(table).row_count
        assert total == len(ids)
        # and every row is individually retrievable by point query
        for i in ids[:5]:
            assert engine.execute(f"SELECT v FROM t WHERE id = {i}").fetchall() == [(1,)]
        engine.close()
