"""Unit tests for the latency model (cost accounting, spill knee)."""

import math

import pytest

from repro.storage import LatencyModel


class TestStatementCost:
    def test_off_model_is_free(self):
        model = LatencyModel.off()
        assert model.statement_cost(10_000, 100, True) == 0.0
        assert model.write_cost(10_000) == 0.0

    def test_index_cost_grows_logarithmically(self):
        model = LatencyModel()
        small = model.statement_cost(100, 1, uses_index=True)
        big = model.statement_cost(100_000, 1, uses_index=True)
        assert big > small
        expected_delta = model.index_io * (math.log2(100_000) - math.log2(100))
        assert big - small == pytest.approx(expected_delta)

    def test_full_scan_linear_in_rows(self):
        model = LatencyModel()
        a = model.statement_cost(1_000, 0, uses_index=False)
        b = model.statement_cost(2_000, 0, uses_index=False)
        assert b - a == pytest.approx(model.row_cost * 1_000)

    def test_rows_touched_add_cost(self):
        model = LatencyModel()
        a = model.statement_cost(1_000, 10, uses_index=True)
        b = model.statement_cost(1_000, 110, uses_index=True)
        assert b > a

    def test_scale_multiplies(self):
        base = LatencyModel().statement_cost(1_000, 10, True)
        scaled = LatencyModel().scaled(5).statement_cost(1_000, 10, True)
        assert scaled == pytest.approx(base * 5)


class TestBufferPoolKnee:
    def make(self):
        return LatencyModel(write_io=1e-3, buffer_pool_rows=10_000, disk_penalty=3.0)

    def test_below_knee_no_penalty(self):
        model = self.make()
        assert model.write_cost(9_999) == pytest.approx(1e-3)

    def test_above_knee_penalized(self):
        model = self.make()
        assert model.write_cost(10_001) == pytest.approx(3e-3)

    def test_reads_penalized_too(self):
        model = self.make()
        below = model.statement_cost(9_000, 1, True)
        above = model.statement_cost(11_000, 1, True)
        # more than the pure log-growth: the spill factor kicked in
        log_only = model.base + model.index_io * math.log2(11_000) + model.row_cost
        assert above > log_only
        assert above > below * 2

    def test_no_knee_when_unset(self):
        model = LatencyModel(write_io=1e-3)
        assert model.write_cost(10**9) == pytest.approx(1e-3)

    def test_commit_cost_scaled(self):
        model = LatencyModel(commit_io=2e-3).scaled(2)
        assert model.commit_cost() == pytest.approx(4e-3)
