"""Unit tests for statement-context extraction (sharding conditions)."""

import pytest

from repro.engine import build_context
from repro.exceptions import RouteError
from repro.sql import parse


def ctx(sql, rule, params=()):
    return build_context(parse(sql), sql, params, rule)


class TestWhereExtraction:
    def test_equality(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE uid = 5", paper_rule)
        condition = context.conditions_for("t_user")["uid"]
        assert condition.values == [5]

    def test_in(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE uid IN (1, 2, 3)", paper_rule)
        assert context.conditions_for("t_user")["uid"].values == [1, 2, 3]

    def test_between(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE uid BETWEEN 2 AND 9", paper_rule)
        assert context.conditions_for("t_user")["uid"].range_ == (2, 9)

    def test_half_open_comparison(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE uid >= 7", paper_rule)
        assert context.conditions_for("t_user")["uid"].range_ == (7, None)

    def test_reversed_comparison(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE 7 > uid", paper_rule)
        assert context.conditions_for("t_user")["uid"].range_ == (None, 7)

    def test_placeholder_value(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE uid = ?", paper_rule, params=(9,))
        assert context.conditions_for("t_user")["uid"].values == [9]

    def test_qualified_by_alias(self, paper_rule):
        context = ctx("SELECT * FROM t_user u WHERE u.uid = 2", paper_rule)
        assert context.conditions_for("t_user")["uid"].values == [2]

    def test_non_sharding_column_ignored(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE age = 30", paper_rule)
        assert context.conditions_for("t_user") == {}

    def test_or_disjunction_not_extracted(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE uid = 1 OR age = 5", paper_rule)
        assert context.conditions_for("t_user") == {}

    def test_and_intersects_conditions(self, paper_rule):
        context = ctx(
            "SELECT * FROM t_user WHERE uid IN (1, 2, 3) AND uid IN (2, 3, 4)", paper_rule
        )
        assert context.conditions_for("t_user")["uid"].values == [2, 3]

    def test_unsharded_table_no_conditions(self, paper_rule):
        context = ctx("SELECT * FROM t_dict WHERE k = 'a'", paper_rule)
        assert context.conditions_for("t_dict") == {}

    def test_negated_in_ignored(self, paper_rule):
        context = ctx("SELECT * FROM t_user WHERE uid NOT IN (1)", paper_rule)
        assert context.conditions_for("t_user") == {}

    def test_join_condition_equality_noted_per_table(self, paper_rule):
        context = ctx(
            "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE u.uid = 1",
            paper_rule,
        )
        assert context.conditions_for("t_user")["uid"].values == [1]

    def test_alias_map(self, paper_rule):
        context = ctx("SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid", paper_rule)
        assert context.alias_map == {"u": "t_user", "o": "t_order"}


class TestInsertExtraction:
    def test_per_row_conditions(self, paper_rule):
        context = ctx(
            "INSERT INTO t_user (uid, name) VALUES (1, 'a'), (2, 'b')", paper_rule
        )
        assert len(context.insert_row_conditions) == 2
        assert context.insert_row_conditions[0]["uid"].values == [1]
        assert context.insert_row_conditions[1]["uid"].values == [2]

    def test_missing_sharding_column_raises(self, paper_rule):
        with pytest.raises(RouteError):
            ctx("INSERT INTO t_user (name) VALUES ('a')", paper_rule)

    def test_placeholder_values(self, paper_rule):
        context = ctx(
            "INSERT INTO t_user (uid, name) VALUES (?, ?)", paper_rule, params=(8, "x")
        )
        assert context.insert_row_conditions[0]["uid"].values == [8]

    def test_unbound_placeholder_raises(self, paper_rule):
        with pytest.raises(RouteError):
            ctx("INSERT INTO t_user (uid, name) VALUES (?, ?)", paper_rule)

    def test_unsharded_insert_no_conditions(self, paper_rule):
        context = ctx("INSERT INTO t_dict (k, v) VALUES ('a', 'b')", paper_rule)
        assert context.insert_row_conditions == []


class TestKeyGeneration:
    def test_keys_generated_when_column_missing(self, fleet):
        from repro.sharding import ShardingRule, build_auto_table_rule

        rule_obj = build_auto_table_rule(
            "t_auto", ["ds0", "ds1"], sharding_column="id",
            properties={"sharding-count": 2},
            key_generate_column="id",
        )
        rule = ShardingRule([rule_obj], default_data_source="ds0")
        context = ctx("INSERT INTO t_auto (v) VALUES ('x'), ('y')", rule)
        assert context.generated_keys is not None
        column, keys = context.generated_keys
        assert column == "id"
        assert len(keys) == 2 and keys[0] != keys[1]
        # generated keys became routable conditions
        assert len(context.insert_row_conditions) == 2

    def test_no_generation_when_supplied(self, fleet):
        from repro.sharding import ShardingRule, build_auto_table_rule

        rule_obj = build_auto_table_rule(
            "t_auto", ["ds0"], sharding_column="id",
            properties={"sharding-count": 1},
            key_generate_column="id",
        )
        rule = ShardingRule([rule_obj])
        context = ctx("INSERT INTO t_auto (id, v) VALUES (5, 'x')", rule)
        assert context.generated_keys is None


class TestHints:
    def test_hint_values_merge_into_conditions(self, paper_rule):
        from repro.sharding import HINT_COLUMN

        statement = parse("SELECT * FROM t_user")
        context = build_context(statement, "", (), paper_rule, hint_values=[1])
        assert context.conditions_for("t_user")[HINT_COLUMN].values == [1]
