"""Unit and property tests for the AST->SQL formatter (round-tripping)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sql import (
    MYSQL,
    ORACLE,
    POSTGRESQL,
    SQLSERVER,
    format_literal,
    format_statement,
    parse,
)


def roundtrip(sql, dialect=POSTGRESQL):
    """format(parse(sql)) must itself parse to the same formatted text."""
    first = format_statement(parse(sql), dialect)
    second = format_statement(parse(first), dialect)
    assert first == second
    return first


class TestFormatSelect:
    def test_simple(self):
        assert roundtrip("select * from t_user") == "SELECT * FROM t_user"

    def test_where_and_order(self):
        out = roundtrip("SELECT a FROM t WHERE a > 1 ORDER BY a DESC")
        assert out == "SELECT a FROM t WHERE a > 1 ORDER BY a DESC"

    def test_join(self):
        out = roundtrip("SELECT * FROM a JOIN b ON a.x = b.y")
        assert "INNER JOIN b ON a.x = b.y" in out

    def test_group_having(self):
        out = roundtrip("SELECT name, SUM(v) FROM t GROUP BY name HAVING SUM(v) > 3")
        assert "GROUP BY name HAVING SUM(v) > 3" in out

    def test_limit_mysql_style(self):
        out = format_statement(parse("SELECT * FROM t LIMIT 10 OFFSET 5"), MYSQL)
        assert out.endswith("LIMIT 5, 10")

    def test_limit_postgres_style(self):
        out = format_statement(parse("SELECT * FROM t LIMIT 10 OFFSET 5"), POSTGRESQL)
        assert out.endswith("LIMIT 10 OFFSET 5")

    def test_limit_fetch_style(self):
        out = format_statement(parse("SELECT * FROM t LIMIT 10 OFFSET 5"), SQLSERVER)
        assert out.endswith("OFFSET 5 ROWS FETCH NEXT 10 ROWS ONLY")
        out = format_statement(parse("SELECT * FROM t LIMIT 10"), ORACLE)
        assert out.endswith("FETCH NEXT 10 ROWS ONLY")

    def test_in_and_between(self):
        out = roundtrip("SELECT * FROM t WHERE a IN (1, 2) AND b BETWEEN 3 AND 4")
        assert "a IN (1, 2)" in out
        assert "b BETWEEN 3 AND 4" in out

    def test_parentheses_preserved_for_precedence(self):
        out = roundtrip("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert "(a = 1 OR b = 2) AND c = 3" in out

    def test_placeholders_survive(self):
        out = roundtrip("SELECT * FROM t WHERE a = ? AND b IN (?, ?)")
        assert out.count("?") == 3

    def test_case_expression(self):
        out = roundtrip("SELECT CASE WHEN a > 0 THEN 1 ELSE 0 END FROM t")
        assert "CASE WHEN a > 0 THEN 1 ELSE 0 END" in out

    def test_distinct(self):
        assert roundtrip("SELECT DISTINCT a FROM t").startswith("SELECT DISTINCT")


class TestFormatDML:
    def test_insert(self):
        out = roundtrip("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert out == "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')"

    def test_update(self):
        out = roundtrip("UPDATE t SET a = 1 WHERE b = 2")
        assert out == "UPDATE t SET a = 1 WHERE b = 2"

    def test_delete(self):
        assert roundtrip("DELETE FROM t WHERE a = 1") == "DELETE FROM t WHERE a = 1"

    def test_string_escaping(self):
        out = roundtrip("INSERT INTO t (a) VALUES ('it''s')")
        assert "'it''s'" in out


class TestFormatDDLTCL:
    def test_create_table(self):
        out = roundtrip(
            "CREATE TABLE t (id INT NOT NULL, name VARCHAR(32) DEFAULT 'x', PRIMARY KEY (id))"
        )
        assert "PRIMARY KEY (id)" in out
        assert "VARCHAR(32)" in out

    def test_drop_and_truncate(self):
        assert roundtrip("DROP TABLE IF EXISTS t") == "DROP TABLE IF EXISTS t"
        assert roundtrip("TRUNCATE TABLE t") == "TRUNCATE TABLE t"

    def test_tcl(self):
        assert format_statement(parse("BEGIN")) == "BEGIN"
        assert format_statement(parse("COMMIT")) == "COMMIT"
        assert format_statement(parse("ROLLBACK")) == "ROLLBACK"


class TestFormatLiteral:
    def test_null(self):
        assert format_literal(None) == "NULL"

    def test_bool(self):
        assert format_literal(True) == "TRUE"

    def test_numbers(self):
        assert format_literal(5) == "5"
        assert format_literal(2.5) == "2.5"

    def test_string_quoting(self):
        assert format_literal("a'b") == "'a''b'"


# -- property-based round-trip -------------------------------------------------

# reserved words need quoting in real SQL too; unquoted identifiers exclude them
from repro.sql.tokens import KEYWORDS

_ident = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper() not in KEYWORDS
)
_value = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.text(alphabet="abcxyz '", min_size=0, max_size=8),
)


@settings(max_examples=60, deadline=None)
@given(table=_ident, column=_ident, value=_value)
def test_roundtrip_point_select(table, column, value):
    sql = f"SELECT {column} FROM {table} WHERE {column} = {format_literal(value)}"
    roundtrip(sql)


@settings(max_examples=60, deadline=None)
@given(
    table=_ident,
    columns=st.lists(_ident, min_size=1, max_size=4, unique=True),
    rows=st.integers(min_value=1, max_value=4),
    value=_value,
)
def test_roundtrip_insert(table, columns, rows, value):
    values = ", ".join(
        "(" + ", ".join(format_literal(value) for _ in columns) + ")" for _ in range(rows)
    )
    sql = f"INSERT INTO {table} ({', '.join(columns)}) VALUES {values}"
    roundtrip(sql)
