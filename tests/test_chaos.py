"""Chaos suite: seeded fault injection against the resilient execution layer.

Every test here is deterministic (seeded injector RNG, scripted one-shot
faults) and asserts *invariants* — bounded client-visible error rates, no
lost or duplicated committed rows, breaker/failover convergence — rather
than exact fault traces, since thread interleaving still varies.
"""

import threading
import time

import pytest

from repro.adaptors import ShardingRuntime
from repro.distsql import execute_distsql
from repro.engine import (
    CircuitBreaker,
    CircuitState,
    ResiliencePolicy,
    SQLEngine,
)
from repro.exceptions import (
    CircuitBreakerOpenError,
    ConnectionPoolExhaustedError,
    DataSourceUnavailableError,
    DeadlineExceededError,
    ExecutionError,
    TransientError,
    XATransactionError,
)
from repro.features import CircuitBreakerFeature
from repro.governor import ConfigCenter, HealthDetector, ReplicaGroup
from repro.storage import DataSource, FaultInjector, FaultKind
from repro.transaction import XATransaction, XATransactionLog
from repro.transaction.xa import recover

pytestmark = pytest.mark.chaos


# ---------------------------------------------------------------------------
# FaultInjector substrate
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_seeded_schedule_is_deterministic(self):
        def run(seed):
            source = DataSource("ds0")
            source.execute("CREATE TABLE t (a INT)")
            injector = FaultInjector(seed=seed)
            injector.configure("ds0", transient_rate=0.3, drop_rate=0.1)
            source.set_fault_injector(injector)
            outcomes = []
            for _ in range(200):
                try:
                    source.execute("SELECT a FROM t")
                    outcomes.append("ok")
                except Exception as exc:
                    outcomes.append(type(exc).__name__)
            return outcomes

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_rates_validated(self):
        injector = FaultInjector()
        with pytest.raises(ValueError):
            injector.configure("ds0", transient_rate=1.5)

    def test_crash_until_revived(self):
        source = DataSource("ds0")
        source.execute("CREATE TABLE t (a INT)")
        injector = FaultInjector()
        source.set_fault_injector(injector)
        injector.crash("ds0")
        with pytest.raises(DataSourceUnavailableError):
            source.execute("SELECT a FROM t")
        assert injector.is_crashed("ds0")
        injector.revive("ds0")
        assert source.execute("SELECT a FROM t") == []
        assert injector.injected("ds0", FaultKind.CRASH) == 1

    def test_fail_once_scripts_a_single_fault(self):
        source = DataSource("ds0")
        source.execute("CREATE TABLE t (a INT)")
        injector = FaultInjector()
        source.set_fault_injector(injector)
        injector.fail_once("ds0", "statement", kind=FaultKind.TRANSIENT)
        with pytest.raises(TransientError):
            source.execute("SELECT a FROM t")
        assert source.execute("SELECT a FROM t") == []

    def test_connection_drop_closes_the_session(self):
        source = DataSource("ds0")
        source.execute("CREATE TABLE t (a INT)")
        injector = FaultInjector()
        source.set_fault_injector(injector)
        conn = source.pool.acquire()
        injector.fail_once("ds0", "statement", kind=FaultKind.DROP)
        with pytest.raises(ExecutionError):
            conn.execute("SELECT a FROM t")
        assert conn.closed
        source.pool.release(conn)


# ---------------------------------------------------------------------------
# Satellite: pool exhaustion diagnostics
# ---------------------------------------------------------------------------


class TestPoolExhaustion:
    def test_exhausted_pool_reports_diagnostics(self):
        source = DataSource("ds0", pool_size=2)
        held = [source.pool.acquire(), source.pool.acquire()]
        with pytest.raises(ConnectionPoolExhaustedError) as excinfo:
            source.pool.acquire(timeout=0.05)
        error = excinfo.value
        assert error.pool_name == "ds0"
        assert error.in_use == 2
        assert error.max_size == 2
        assert error.waited >= 0.05
        assert "ds0" in str(error) and "2/2" in str(error)
        source.pool.release_many(held)
        # Pool recovers once connections are returned.
        conn = source.pool.acquire(timeout=0.05)
        source.pool.release(conn)


# ---------------------------------------------------------------------------
# Satellite: HALF_OPEN single-probe protocol
# ---------------------------------------------------------------------------


class TestHalfOpenProbe:
    def test_exactly_one_probe_admitted_concurrently(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.01)
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        time.sleep(0.02)

        admitted = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            if breaker.try_acquire():
                admitted.append(threading.get_ident())

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(admitted) == 1
        assert breaker.state is CircuitState.HALF_OPEN

        # Failed probe re-opens; the slot frees for the next cooldown.
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        time.sleep(0.02)
        assert breaker.try_acquire()
        assert not breaker.try_acquire()  # probe in flight again
        breaker.record_success()
        assert breaker.state is CircuitState.CLOSED

    def test_feature_admits_one_probe_after_cooldown(self):
        feature = CircuitBreakerFeature(failure_threshold=1, reset_timeout=0.01)
        feature.record_failure()
        assert feature.state is CircuitState.OPEN
        time.sleep(0.02)
        rejected = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait()
            try:
                feature.on_context(None)
            except CircuitBreakerOpenError:
                rejected.append(1)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(rejected) == 5  # exactly one in-flight probe


# ---------------------------------------------------------------------------
# Retry / deadline behaviour of the execution engine
# ---------------------------------------------------------------------------


def make_chaos_engine(fleet, paper_rule, policy, rates=None, seed=11):
    injector = FaultInjector(seed=seed)
    for name, source in fleet.items():
        if rates:
            injector.configure(name, **rates)
        source.set_fault_injector(injector)
    engine = SQLEngine(fleet, paper_rule, max_connections_per_query=2,
                       resilience=policy)
    return engine, injector


class TestRetries:
    def test_transient_faults_absorbed_for_reads(self, fleet, paper_rule):
        engine, injector = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=5, base_backoff=0.0001, seed=3),
            rates={"transient_rate": 0.2},
        )
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (1, 'a', 1), (2, 'b', 2)")
        for _ in range(150):
            rows = engine.execute("SELECT name FROM t_user WHERE uid = 1").fetchall()
            assert rows == [("a",)]
        assert injector.injected(kind=FaultKind.TRANSIENT) > 0
        metrics = engine.executor.metrics.snapshot()
        assert metrics["retries"] > 0
        assert metrics["giveups"] == 0
        engine.close()

    def test_gives_up_after_max_retries(self, fleet, paper_rule):
        engine, _ = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=2, base_backoff=0.0001, max_reroutes=0, seed=3),
            rates={"transient_rate": 1.0},
        )
        with pytest.raises(TransientError):
            engine.execute("SELECT name FROM t_user WHERE uid = 1")
        metrics = engine.executor.metrics.snapshot()
        assert metrics["retries"] == 2
        assert metrics["giveups"] == 1
        engine.close()

    def test_writes_not_retried_without_opt_in(self, fleet, paper_rule):
        engine, _ = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=5, retry_writes=False, seed=3),
        )
        injector = fleet["ds0"].fault_injector
        injector.fail_once("ds0", "statement", kind=FaultKind.TRANSIENT)
        with pytest.raises(TransientError):
            engine.execute("INSERT INTO t_user (uid, name, age) VALUES (2, 'b', 2)")
        assert engine.executor.metrics.snapshot()["retries"] == 0
        engine.close()

    def test_deadline_budget_is_enforced(self, fleet, paper_rule):
        engine, _ = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=1000, base_backoff=0.005,
                             max_backoff=0.01, statement_timeout=0.03,
                             max_reroutes=0, breaker_failure_threshold=10_000,
                             seed=3),
            rates={"transient_rate": 1.0},
        )
        with pytest.raises(DeadlineExceededError):
            engine.execute("SELECT name FROM t_user WHERE uid = 1")
        assert engine.executor.metrics.snapshot()["timeouts"] >= 1
        engine.close()

    def test_retry_reacquires_after_connection_drop(self, fleet, paper_rule):
        engine, injector = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=3, base_backoff=0.0001, seed=3),
        )
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (1, 'a', 1)")
        injector.fail_once("ds1", "statement", kind=FaultKind.DROP)
        rows = engine.execute("SELECT name FROM t_user WHERE uid = 1").fetchall()
        assert rows == [("a",)]
        assert engine.executor.metrics.snapshot()["retries"] == 1
        engine.close()


class TestWriteConsistency:
    def test_no_lost_or_duplicated_rows_under_chaos(self, fleet, paper_rule):
        """Seeded transient faults + retry_writes: every autocommit INSERT
        lands exactly once (faults fire before the write applies)."""
        engine, injector = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=8, base_backoff=0.0001,
                             retry_writes=True, seed=5),
            rates={"transient_rate": 0.15},
        )
        total = 200
        for uid in range(1, total + 1):
            engine.execute(
                "INSERT INTO t_user (uid, name, age) VALUES (?, 'u', 1)", (uid,)
            )
        assert injector.injected(kind=FaultKind.TRANSIENT) > 0
        rows = engine.execute("SELECT uid FROM t_user").fetchall()
        uids = sorted(r[0] for r in rows)
        assert uids == list(range(1, total + 1))  # no lost, no duplicated
        engine.close()


# ---------------------------------------------------------------------------
# Per-source breakers
# ---------------------------------------------------------------------------


class TestPerSourceBreakers:
    def test_sick_source_trips_without_taking_fleet_down(self, fleet, paper_rule):
        engine, injector = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=0, max_reroutes=0,
                             breaker_failure_threshold=2,
                             breaker_reset_timeout=30.0, seed=3),
        )
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (1, 'a', 1), (2, 'b', 2)")
        injector.crash("ds0")
        # uid=2 routes to ds0: two real failures trip its breaker...
        for _ in range(2):
            with pytest.raises(DataSourceUnavailableError):
                engine.execute("SELECT name FROM t_user WHERE uid = 2")
        with pytest.raises(CircuitBreakerOpenError):
            engine.execute("SELECT name FROM t_user WHERE uid = 2")
        # ...while ds1 keeps serving.
        assert engine.execute("SELECT name FROM t_user WHERE uid = 1").fetchall() == [("a",)]
        states = engine.executor.breakers.states()
        assert states["ds0"] is CircuitState.OPEN
        assert states["ds1"] is CircuitState.CLOSED
        assert engine.executor.metrics.snapshot()["breaker_rejections"] >= 1
        engine.close()

    def test_breaker_recovers_after_source_revived(self, fleet, paper_rule):
        engine, injector = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=0, max_reroutes=0,
                             breaker_failure_threshold=1,
                             breaker_reset_timeout=0.02, seed=3),
        )
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (2, 'b', 2)")
        injector.crash("ds0")
        with pytest.raises(DataSourceUnavailableError):
            engine.execute("SELECT name FROM t_user WHERE uid = 2")
        assert engine.executor.breakers.states()["ds0"] is CircuitState.OPEN
        injector.revive("ds0")
        time.sleep(0.03)  # cooldown elapses; next attempt is the probe
        assert engine.execute("SELECT name FROM t_user WHERE uid = 2").fetchall() == [("b",)]
        assert engine.executor.breakers.states()["ds0"] is CircuitState.CLOSED
        engine.close()


# ---------------------------------------------------------------------------
# Health-aware degradation
# ---------------------------------------------------------------------------


class TestHealthDegradation:
    def make_engine(self, fleet, paper_rule):
        engine, injector = make_chaos_engine(
            fleet, paper_rule,
            ResiliencePolicy(max_retries=1, max_reroutes=0, seed=3),
        )
        engine.executor.set_health_check(
            lambda name: not injector.is_crashed(name)
        )
        engine.execute("INSERT INTO t_dict (k, v) VALUES ('currency', 'usd')")
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (1, 'a', 1), (2, 'b', 2)")
        return engine, injector

    def test_sharded_scan_degrades_to_flagged_partial_results(self, fleet, paper_rule):
        engine, injector = self.make_engine(fleet, paper_rule)
        injector.crash("ds0")
        result = engine.execute("SELECT name FROM t_user")
        assert result.partial_results
        assert result.skipped_sources == ["ds0"]
        assert result.fetchall() == [("a",)]  # uid=1 lives on ds1
        metrics = engine.executor.metrics.snapshot()
        assert metrics["degraded_statements"] >= 1
        assert metrics["skipped_units"] >= 1
        engine.close()

    def test_full_results_when_all_up(self, fleet, paper_rule):
        engine, _ = self.make_engine(fleet, paper_rule)
        result = engine.execute("SELECT name FROM t_user")
        assert not result.partial_results
        assert result.skipped_sources == []
        assert sorted(result.fetchall()) == [("a",), ("b",)]
        engine.close()

    def test_broadcast_table_read_redirects_to_healthy_source(self, fleet, paper_rule):
        # Broadcast-table reads route unicast; a DOWN target is replaced by
        # a healthy copy, so the answer stays complete (no partial flag).
        engine, injector = self.make_engine(fleet, paper_rule)
        injector.crash("ds0")
        result = engine.execute("SELECT k, v FROM t_dict")
        assert not result.partial_results
        assert result.fetchall() == [("currency", "usd")]
        engine.close()

    def test_write_to_down_source_fails_fast(self, fleet, paper_rule):
        engine, injector = self.make_engine(fleet, paper_rule)
        injector.crash("ds1")
        with pytest.raises(DataSourceUnavailableError, match="fail fast"):
            engine.execute("INSERT INTO t_dict (k, v) VALUES ('lang', 'en')")
        engine.close()

    def test_all_sources_down_raises(self, fleet, paper_rule):
        engine, injector = self.make_engine(fleet, paper_rule)
        injector.crash("ds0")
        injector.crash("ds1")
        with pytest.raises(DataSourceUnavailableError):
            engine.execute("SELECT k, v FROM t_dict")
        with pytest.raises(DataSourceUnavailableError):
            engine.execute("SELECT name FROM t_user")
        engine.close()


# ---------------------------------------------------------------------------
# Runtime-level chaos: replicas, health-aware routing, observability
# ---------------------------------------------------------------------------


def make_replicated_runtime(policy=None):
    """Primary + two replicas carrying the same (pre-replicated) table."""
    sources = {name: DataSource(name) for name in ("prim", "rep0", "rep1")}
    for source in sources.values():
        source.execute("CREATE TABLE t_item (iid INT PRIMARY KEY, label VARCHAR(32))")
        for iid in range(10):
            source.execute(f"INSERT INTO t_item (iid, label) VALUES ({iid}, 'x{iid}')")
    runtime = ShardingRuntime(
        sources,
        resilience=policy or ResiliencePolicy(
            max_retries=2, base_backoff=0.0001, max_reroutes=3, seed=9
        ),
    )
    runtime.rule.default_data_source = "prim"
    runtime.apply_rwsplit_rule("g0", "prim", ["rep0", "rep1"])
    detector = HealthDetector(sources, ConfigCenter(),
                              groups=[ReplicaGroup("g0", "prim", ["rep0", "rep1"])],
                              interval=0.01)
    runtime.attach_health_detector(detector)
    injector = FaultInjector(seed=9)
    for source in sources.values():
        source.set_fault_injector(injector)
    return runtime, detector, injector


class TestHealthAwareRouting:
    def test_replica_outage_absorbed_by_reroute_and_health(self):
        runtime, detector, injector = make_replicated_runtime()
        run_read = lambda iid: runtime.engine.execute(
            "SELECT label FROM t_item WHERE iid = ?", (iid,)
        ).fetchall()

        for i in range(10):
            assert run_read(i % 10) == [(f"x{i % 10}",)]

        # Mid-run outage: one replica crashes. Reads must keep succeeding —
        # first via pipeline re-route, then via health-aware routing once
        # the detector converges.
        injector.crash("rep0")
        errors = 0
        for i in range(30):
            try:
                assert run_read(i % 10) == [(f"x{i % 10}",)]
            except Exception:
                errors += 1
            if i == 4:
                detector.check_once()  # Governor notices the outage
        assert errors == 0
        assert not detector.is_up("rep0")
        assert runtime.engine.executor.metrics.reroutes > 0

        # Revive: after the next probe round the replica serves again.
        injector.revive("rep0")
        detector.check_once()
        assert detector.is_up("rep0")
        for i in range(10):
            assert run_read(i % 10) == [(f"x{i % 10}",)]
        runtime.close()

    def test_observability_via_distsql(self):
        runtime, detector, injector = make_replicated_runtime()
        for i in range(6):
            runtime.engine.execute("SELECT label FROM t_item WHERE iid = ?", (i,))

        result = execute_distsql("SHOW EXECUTION METRICS", runtime)
        assert result.columns == ["metric", "value"]
        metrics = dict(result.rows)
        assert metrics["statements"] >= 6
        assert {"retries", "reroutes", "timeouts", "giveups",
                "degraded_statements", "breaker_rejections"} <= set(metrics)

        result = execute_distsql("SHOW CIRCUIT BREAKERS", runtime)
        assert result.columns == ["data_source", "state", "failures", "open_seconds"]
        states = {row[0]: row[1] for row in result.rows}
        assert all(state == "closed" for state in states.values())

        # Crash the primary: the Governor promotes a replica and the
        # failover (with its detection->promotion latency) becomes visible.
        injector.crash("prim")
        detector.check_once()
        result = execute_distsql("SHOW FAILOVER EVENTS", runtime)
        assert result.columns == ["group", "old_primary", "new_primary", "failover_ms"]
        assert len(result.rows) == 1
        group, old_primary, new_primary, failover_ms = result.rows[0]
        assert (group, old_primary, new_primary) == ("g0", "prim", "rep0")
        assert failover_ms >= 0.0
        runtime.close()


# ---------------------------------------------------------------------------
# Sysbench-style traffic under a seeded fault schedule
# ---------------------------------------------------------------------------


class TestSysbenchChaos:
    def test_point_select_traffic_sees_zero_errors(self):
        import random

        from repro.baselines import ShardingJDBCSystem
        from repro.bench.sysbench import SysbenchConfig, SysbenchWorkload

        workload = SysbenchWorkload(SysbenchConfig(table_size=400))
        system = ShardingJDBCSystem([("sbtest", "id")], num_sources=2,
                                    tables_per_source=2, name="SSJ",
                                    layout="range", key_space=401)
        workload.prepare(system)
        injector = FaultInjector(seed=7)
        for name, source in system.runtime.data_sources.items():
            injector.configure(name, transient_rate=0.02, latency_rate=0.005,
                               latency_spike=0.0005)
            source.set_fault_injector(injector)
        system.runtime.enable_resilience(
            ResiliencePolicy(max_retries=4, base_backoff=0.0001,
                             retry_writes=True, seed=7)
        )
        session = system.session()
        rng = random.Random(7)
        errors = 0
        for _ in range(400):
            try:
                workload.run_transaction("point_select", session, rng)
            except Exception:
                errors += 1
        session.close()
        metrics = system.runtime.engine.executor.metrics.snapshot()
        system.close()
        assert errors == 0  # a 2% transient rate is fully absorbed
        assert injector.injected(kind=FaultKind.TRANSIENT) > 0
        assert metrics["retries"] > 0
        assert metrics["giveups"] == 0


# ---------------------------------------------------------------------------
# Satellite: XA recovery under injected failures
# ---------------------------------------------------------------------------


class TestXARecovery:
    def make_fleet(self):
        sources = {name: DataSource(name) for name in ("ds0", "ds1")}
        for source in sources.values():
            source.execute("CREATE TABLE t_acct (aid INT PRIMARY KEY, bal INT)")
        return sources

    def test_participant_crash_between_prepare_and_commit(self):
        sources = self.make_fleet()
        injector = FaultInjector(seed=1)
        for source in sources.values():
            source.set_fault_injector(injector)
        log = XATransactionLog()

        txn = XATransaction(sources, log=log)
        txn.connection_for("ds0").execute("INSERT INTO t_acct (aid, bal) VALUES (1, 100)")
        txn.connection_for("ds1").execute("INSERT INTO t_acct (aid, bal) VALUES (2, 200)")
        # Crash ds1 *after* it prepared, when its phase-2 commit arrives.
        injector.fail_once("ds1", "commit", kind=FaultKind.CRASH)
        with pytest.raises(XATransactionError, match="will be recovered"):
            txn.commit()

        # The decision was COMMIT: ds0 applied, ds1 is in doubt.
        assert sources["ds0"].execute("SELECT bal FROM t_acct WHERE aid = 1") == [(100,)]
        assert len(log.in_doubt()) == 1
        assert log.in_doubt()[0].pending == ["ds1"]

        # Restart the participant and replay the log.
        injector.revive("ds1")
        assert recover(log, sources) == 1
        assert sources["ds1"].execute("SELECT bal FROM t_acct WHERE aid = 2") == [(200,)]
        assert log.in_doubt() == []
        # The branch is gone from the participant's prepared set too.
        assert not sources["ds1"].database.prepared_xids()

    def test_recovery_is_idempotent(self):
        sources = self.make_fleet()
        injector = FaultInjector(seed=1)
        for source in sources.values():
            source.set_fault_injector(injector)
        log = XATransactionLog()
        txn = XATransaction(sources, log=log)
        txn.connection_for("ds0").execute("INSERT INTO t_acct (aid, bal) VALUES (1, 100)")
        txn.connection_for("ds1").execute("INSERT INTO t_acct (aid, bal) VALUES (2, 200)")
        injector.fail_once("ds1", "commit", kind=FaultKind.CRASH)
        with pytest.raises(XATransactionError):
            txn.commit()
        injector.revive("ds1")
        assert recover(log, sources) == 1
        assert recover(log, sources) == 0  # nothing left in doubt
        assert sources["ds1"].execute("SELECT bal FROM t_acct WHERE aid = 2") == [(200,)]
