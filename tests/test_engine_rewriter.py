"""Unit tests for the SQL rewriter (correctness + optimization rewrites)."""


from repro.engine import build_context, rewrite, route
from repro.sql import parse


def run(sql, rule, params=()):
    context = build_context(parse(sql), sql, params, rule)
    route_result = route(context, rule)
    return rewrite(context, route_result), route_result


class TestIdentifierRewrite:
    def test_table_renamed(self, paper_rule):
        result, _ = run("SELECT * FROM t_user WHERE uid = 4", paper_rule)
        assert result.execution_units[0].sql == "SELECT * FROM t_user_h0 WHERE uid = 4"

    def test_alias_shields_qualifiers(self, paper_rule):
        result, _ = run("SELECT u.name FROM t_user u WHERE u.uid = 4", paper_rule)
        assert result.execution_units[0].sql == "SELECT u.name FROM t_user_h0 u WHERE u.uid = 4"

    def test_dangling_qualifier_follows_rename(self, paper_rule):
        result, _ = run("SELECT t_user.name FROM t_user WHERE t_user.uid = 4", paper_rule)
        sql = result.execution_units[0].sql
        assert sql == "SELECT t_user_h0.name FROM t_user_h0 WHERE t_user_h0.uid = 4"

    def test_binding_join_rewrite_paper_example(self, paper_rule):
        result, _ = run(
            "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE u.uid IN (1, 2)",
            paper_rule,
        )
        sqls = sorted(u.sql for u in result.execution_units)
        assert sqls == [
            "SELECT * FROM t_order_h0 o INNER JOIN t_user_h0 u ON u.uid = o.uid WHERE u.uid IN (1, 2)"
            if False else
            "SELECT * FROM t_user_h0 u INNER JOIN t_order_h0 o ON u.uid = o.uid WHERE u.uid IN (1, 2)",
            "SELECT * FROM t_user_h1 u INNER JOIN t_order_h1 o ON u.uid = o.uid WHERE u.uid IN (1, 2)",
        ]


class TestDerivedColumns:
    def test_order_by_derivation_paper_example(self, paper_rule):
        """Paper: 'SELECT oid FROM t_order ORDER BY uid' derives uid."""
        result, _ = run("SELECT oid FROM t_order ORDER BY uid", paper_rule)
        sql = result.execution_units[0].sql
        assert "uid AS ORDER_BY_DERIVED_0" in sql

    def test_group_by_derivation(self, paper_rule):
        result, _ = run("SELECT COUNT(*) FROM t_user GROUP BY age", paper_rule)
        sql = result.execution_units[0].sql
        assert "age AS GROUP_BY_DERIVED_0" in sql

    def test_avg_decomposed(self, paper_rule):
        result, _ = run("SELECT AVG(age) FROM t_user", paper_rule)
        sql = result.execution_units[0].sql
        assert "COUNT(age) AS AVG_DERIVED_COUNT_0" in sql
        assert "SUM(age) AS AVG_DERIVED_SUM_0" in sql
        spec = result.merge_spec
        avg = spec.aggregates[0]
        assert avg.func == "AVG" and avg.count_index == 1 and avg.sum_index == 2

    def test_no_derivation_when_column_selected(self, paper_rule):
        result, _ = run("SELECT oid, uid FROM t_order ORDER BY uid", paper_rule)
        assert "DERIVED" not in result.execution_units[0].sql

    def test_star_needs_no_derivation(self, paper_rule):
        result, _ = run("SELECT * FROM t_user ORDER BY age", paper_rule)
        assert "DERIVED" not in result.execution_units[0].sql

    def test_merge_spec_strips_derived_columns(self, paper_rule):
        result, _ = run("SELECT oid FROM t_order ORDER BY uid", paper_rule)
        assert result.merge_spec.output_width == 1


class TestPaginationRevision:
    def test_offset_folded_into_count(self, paper_rule):
        result, _ = run("SELECT * FROM t_user ORDER BY uid LIMIT 10 OFFSET 5", paper_rule)
        for unit in result.execution_units:
            assert unit.sql.endswith("LIMIT 15")
        assert result.merge_spec.limit_count == 10
        assert result.merge_spec.limit_offset == 5

    def test_placeholder_limits_resolved(self, paper_rule):
        result, _ = run(
            "SELECT * FROM t_user ORDER BY uid LIMIT ? OFFSET ?", paper_rule, params=(10, 5)
        )
        assert result.execution_units[0].sql.endswith("LIMIT 15")
        assert result.merge_spec.limit_count == 10

    def test_single_node_keeps_original_pagination(self, paper_rule):
        result, _ = run("SELECT * FROM t_user WHERE uid = 2 ORDER BY uid LIMIT 10 OFFSET 5", paper_rule)
        sql = result.execution_units[0].sql
        assert "LIMIT 10 OFFSET 5" in sql

    def test_offset_only(self, paper_rule):
        result, _ = run("SELECT * FROM t_user ORDER BY uid OFFSET 3", paper_rule)
        # per-shard SQL has no LIMIT (must fetch everything)
        assert "LIMIT" not in result.execution_units[0].sql
        assert result.merge_spec.limit_offset == 3


class TestInsertSplit:
    def test_rows_distributed(self, paper_rule):
        result, route_result = run(
            "INSERT INTO t_user (uid, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')", paper_rule
        )
        sqls = {u.data_source: u.sql for u in result.execution_units}
        assert sqls["ds1"] == "INSERT INTO t_user_h1 (uid, name) VALUES (1, 'a'), (3, 'c')"
        assert sqls["ds0"] == "INSERT INTO t_user_h0 (uid, name) VALUES (2, 'b')"

    def test_placeholders_renumbered_per_unit(self, paper_rule):
        result, _ = run(
            "INSERT INTO t_user (uid, name) VALUES (?, ?), (?, ?)",
            paper_rule,
            params=(1, "a", 2, "b"),
        )
        by_ds = {u.data_source: u for u in result.execution_units}
        assert by_ds["ds1"].params == (1, "a")
        assert by_ds["ds0"].params == (2, "b")
        assert by_ds["ds0"].sql.count("?") == 2

    def test_single_node_insert_not_split(self, paper_rule):
        result, _ = run("INSERT INTO t_user (uid, name) VALUES (2, 'a'), (4, 'b')", paper_rule)
        assert len(result.execution_units) == 1
        assert result.execution_units[0].sql.count("(") >= 2


class TestStreamMergerOptimization:
    def test_group_by_gains_order_by(self, paper_rule):
        result, _ = run("SELECT age, COUNT(*) FROM t_user GROUP BY age", paper_rule)
        sql = result.execution_units[0].sql
        assert "ORDER BY age" in sql
        assert result.merge_spec.group_equals_order

    def test_group_with_different_order_not_stream(self, paper_rule):
        result, _ = run(
            "SELECT age, COUNT(*) AS c FROM t_user GROUP BY age ORDER BY c DESC", paper_rule
        )
        assert not result.merge_spec.group_equals_order

    def test_paper_group_order_same_is_stream(self, paper_rule):
        result, _ = run(
            "SELECT age, SUM(uid) FROM t_user GROUP BY age ORDER BY age", paper_rule
        )
        assert result.merge_spec.group_equals_order


class TestSingleNodeOptimization:
    def test_no_rewrites_on_single_node(self, paper_rule):
        result, _ = run("SELECT oid FROM t_order WHERE uid = 2 ORDER BY uid", paper_rule)
        sql = result.execution_units[0].sql
        assert "DERIVED" not in sql
        assert result.merge_spec.single_node

    def test_params_pass_through(self, paper_rule):
        result, _ = run("SELECT * FROM t_user WHERE uid = ? AND age > ?", paper_rule, params=(2, 10))
        unit = result.execution_units[0]
        assert unit.params == (2, 10)
