"""Tests for the benchmark substrate: workloads, runner, reporting."""

import random

import pytest

from repro.baselines import (
    ShardingJDBCSystem,
    SingleNodeSystem,
    make_grid_sharding,
)
from repro.bench import (
    SCENARIOS,
    Measurement,
    SysbenchConfig,
    SysbenchWorkload,
    TPCC_BROADCAST_TABLES,
    TPCC_SHARDED_TABLES,
    TPCCConfig,
    TPCCWorkload,
    format_table,
    print_series,
    run_benchmark,
    sysbench_row,
    tpcc_row,
)


@pytest.fixture
def small_single():
    system = SingleNodeSystem("unit")
    yield system
    system.close()


class TestSysbenchWorkload:
    def test_prepare_loads_exact_row_count(self, small_single):
        workload = SysbenchWorkload(SysbenchConfig(table_size=257))
        workload.prepare(small_single)
        session = small_single.session()
        assert session.execute("SELECT COUNT(*) FROM sbtest") == [(257,)]
        session.close()

    def test_rows_have_sysbench_shape(self, small_single):
        cfg = SysbenchConfig(table_size=20)
        SysbenchWorkload(cfg).prepare(small_single)
        session = small_single.session()
        rows = session.execute("SELECT id, k, c, pad FROM sbtest ORDER BY id")
        assert [r[0] for r in rows] == list(range(1, 21))
        assert all(1 <= r[1] <= 20 for r in rows)
        assert all(len(r[2]) == cfg.c_length for r in rows)
        assert all(len(r[3]) == cfg.pad_length for r in rows)
        session.close()

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_every_scenario_executes(self, small_single, scenario):
        workload = SysbenchWorkload(SysbenchConfig(table_size=100))
        workload.prepare(small_single)
        session = small_single.session()
        rng = random.Random(1)
        for _ in range(3):
            workload.run_transaction(scenario, session, rng)
        # delete+insert keeps the table size constant
        assert session.execute("SELECT COUNT(*) FROM sbtest") == [(100,)]
        session.close()

    def test_unknown_scenario_rejected(self, small_single):
        workload = SysbenchWorkload(SysbenchConfig(table_size=10))
        workload.prepare(small_single)
        session = small_single.session()
        with pytest.raises(ValueError):
            workload.run_transaction("chaos", session, random.Random(0))
        session.close()

    def test_prepare_on_sharded_system(self):
        cfg = SysbenchConfig(table_size=200)
        system = ShardingJDBCSystem(
            [("sbtest", "id")], num_sources=2, tables_per_source=2,
            layout="range", key_space=201,
        )
        SysbenchWorkload(cfg).prepare(system)
        session = system.session()
        assert session.execute("SELECT COUNT(*) FROM sbtest") == [(200,)]
        session.close()
        system.close()


class TestTPCCWorkload:
    @pytest.fixture
    def loaded(self):
        system = ShardingJDBCSystem(
            TPCC_SHARDED_TABLES, num_sources=2, tables_per_source=1,
            broadcast_tables=TPCC_BROADCAST_TABLES,
        )
        config = TPCCConfig(warehouses=2)
        workload = TPCCWorkload(config)
        workload.prepare(system)
        yield system, workload, config
        system.close()

    def test_load_volumes(self, loaded):
        system, workload, config = loaded
        session = system.session()
        assert session.execute("SELECT COUNT(*) FROM bmsql_warehouse") == [(2,)]
        assert session.execute("SELECT COUNT(*) FROM bmsql_district") == [
            (config.warehouses * config.districts,)
        ]
        assert session.execute("SELECT COUNT(*) FROM bmsql_item") == [(config.items,)]
        assert session.execute("SELECT COUNT(*) FROM bmsql_stock") == [
            (config.warehouses * config.items,)
        ]
        orders = session.execute("SELECT COUNT(*) FROM bmsql_oorder")[0][0]
        assert orders == config.warehouses * config.districts * config.initial_orders_per_district
        session.close()

    def test_item_table_replicated_to_every_source(self, loaded):
        system, workload, config = loaded
        for source in system.runtime.data_sources.values():
            assert source.database.table("bmsql_item").row_count == config.items

    def test_mix_proportions(self, loaded):
        system, workload, config = loaded
        rng = random.Random(0)
        picks = [workload.pick_transaction(rng) for _ in range(2000)]
        share = picks.count("new_order") / len(picks)
        assert 0.38 < share < 0.52
        assert set(picks) == {"new_order", "payment", "order_status", "delivery", "stock_level"}

    def test_new_order_advances_district_counter(self, loaded):
        system, workload, config = loaded
        session = system.session()
        before = session.execute(
            "SELECT SUM(d_next_o_id) FROM bmsql_district"
        )[0][0]
        rng = random.Random(3)
        workload.txn_new_order(session, rng)
        after = session.execute("SELECT SUM(d_next_o_id) FROM bmsql_district")[0][0]
        assert after == before + 1
        session.close()

    def test_payment_conserves_history(self, loaded):
        system, workload, config = loaded
        session = system.session()
        workload.txn_payment(session, random.Random(4))
        assert session.execute("SELECT COUNT(*) FROM bmsql_history") == [(1,)]
        session.close()

    def test_delivery_consumes_new_orders(self, loaded):
        system, workload, config = loaded
        session = system.session()
        before = session.execute("SELECT COUNT(*) FROM bmsql_new_order")[0][0]
        workload.txn_delivery(session, random.Random(5))
        after = session.execute("SELECT COUNT(*) FROM bmsql_new_order")[0][0]
        assert after < before
        session.close()

    def test_read_only_transactions_run(self, loaded):
        system, workload, config = loaded
        session = system.session()
        workload.txn_order_status(session, random.Random(6))
        workload.txn_stock_level(session, random.Random(7))
        session.close()


class TestRunner:
    def test_measurement_metrics(self):
        m = Measurement(system="s", scenario="x")
        m.latencies_ms = [1.0, 2.0, 3.0, 4.0, 100.0]
        m.transactions = 5
        m.elapsed = 2.0
        assert m.tps == 2.5
        assert m.avg_ms == 22.0
        assert m.percentile(0) == 1.0
        assert m.percentile(100) == 100.0
        assert m.p90_ms == 100.0

    def test_empty_measurement(self):
        m = Measurement(system="s", scenario="x")
        assert m.tps == 0.0
        assert m.avg_ms == 0.0
        assert m.p99_ms == 0.0

    def test_run_benchmark_counts_transactions(self, small_single):
        SysbenchWorkload(SysbenchConfig(table_size=50)).prepare(small_single)
        counter = {"n": 0}

        def txn(session, rng):
            counter["n"] += 1
            session.execute("SELECT COUNT(*) FROM sbtest")

        m = run_benchmark(small_single, txn, threads=2, duration=0.3, warmup=0.05)
        assert m.transactions > 0
        assert m.transactions <= counter["n"]
        assert len(m.latencies_ms) == m.transactions
        assert m.errors == 0

    def test_run_benchmark_propagates_persistent_errors(self, small_single):
        def broken(session, rng):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_benchmark(small_single, broken, threads=1, duration=0.2, warmup=0.0,
                          max_errors=3)

    def test_run_benchmark_tolerates_sporadic_errors(self, small_single):
        SysbenchWorkload(SysbenchConfig(table_size=50)).prepare(small_single)
        state = {"n": 0}

        def flaky(session, rng):
            state["n"] += 1
            if state["n"] % 5 == 0:
                raise RuntimeError("sporadic")
            session.execute("SELECT COUNT(*) FROM sbtest")

        m = run_benchmark(small_single, flaky, threads=1, duration=0.2, warmup=0.0,
                          max_errors=1000)
        assert m.errors > 0
        assert m.transactions > 0


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.345], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_rows(self):
        m = Measurement(system="X", scenario="s")
        m.latencies_ms = [2.0]
        m.transactions = 1
        m.elapsed = 1.0
        assert sysbench_row(m) == ["X", 1.0, 2.0, 2.0]
        assert tpcc_row(m) == ["X", 1.0, 2.0]

    def test_print_series(self):
        text = print_series("T", "x", [1, 2], {"sys": [10.0, 20.0]})
        assert "== T ==" in text
        assert "20.0" in text
