"""Vectorized batch execution, fused pipelining and work-stealing fan-out.

Three suites attacking the execute stage from different angles:

- differential: every statement runs against *triplet* data sources —
  batched chunks (``batch_rows=256``), the row-at-a-time compiled path
  (``batch_rows=1``) and the tree-walking interpreter — and must agree.
- pipelining: ``execute_pipeline`` at the storage, engine and adaptor
  layers keeps serial-equivalent semantics (mid-batch errors, rollback)
  while coalescing write-I/O per written table.
- fan-out: the work-stealing scheduler completes skewed routes with
  steals observed, shuts down cleanly, and honours statement deadlines
  while waiting on an exhausted pool.
"""

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import ExecutionEngine, SQLEngine
from repro.engine.resilience import ResiliencePolicy
from repro.exceptions import (
    DeadlineExceededError,
    ExecutionError,
    UnsupportedSQLError,
)
from repro.sharding import ShardingRule, build_auto_table_rule
from repro.sql import parse
from repro.storage import DataSource, LatencyModel

from .test_storage_plans import (
    DIFF_SETTINGS,
    SCHEMA_T,
    SCHEMA_U,
    U_ROWS,
    limit_s,
    order_s,
    rows_s,
    select_items_s,
    where_s,
)

# ---------------------------------------------------------------------------
# Differential: batched chunks == row-at-a-time == interpreter
# ---------------------------------------------------------------------------


def make_triplets(rows):
    """Three identical data sources: batched plans, row-path plans
    (``batch_rows=1``), and the interpreter (no plan cache)."""
    triplets = []
    for tag, batch_rows, compiled in (
        ("batched", 256, True),
        ("rowpath", 1, True),
        ("interp", 256, False),
    ):
        ds = DataSource(f"tri_{tag}")
        ds.database.batch_rows = batch_rows
        if not compiled:
            ds.database.plan_cache.enabled = False
        ds.execute(SCHEMA_T)
        ds.execute("CREATE INDEX idx_grp ON t (grp)")
        ds.execute("CREATE INDEX idx_val ON t (val)")
        ds.execute(SCHEMA_U)
        conn = ds.connect()
        if rows:
            conn.cursor().executemany(
                "INSERT INTO t (id, grp, val, name, flag) VALUES (?, ?, ?, ?, ?)", rows
            )
        conn.cursor().executemany("INSERT INTO u (uid, grp, tag) VALUES (?, ?, ?)", U_ROWS)
        triplets.append((ds, conn))
    return triplets


def run_triplet(triplets, sql, params=()):
    outs = []
    for _ds, conn in triplets:
        cur = conn.execute(sql, params)
        outs.append((cur.fetchall(), cur.rowcount))
    return outs


def assert_triplets_agree(triplets, sql, params=()):
    """Run twice on all three (compile, then hit) and compare everything."""
    for outs in (run_triplet(triplets, sql, params), run_triplet(triplets, sql, params)):
        assert outs[0] == outs[1], sql
        assert outs[1] == outs[2], sql


class TestDifferentialBatchRows:
    @DIFF_SETTINGS
    @given(rows=rows_s, items=select_items_s, where=where_s, order=order_s, limit=limit_s)
    def test_select_matches_row_path_and_interpreter(self, rows, items, where, order, limit):
        triplets = make_triplets(rows)
        cond, params = where
        sql = f"SELECT {items} FROM t {cond} {order} {limit}".strip()
        assert_triplets_agree(triplets, sql, params)

    @DIFF_SETTINGS
    @given(rows=rows_s, where=where_s)
    def test_aggregates_and_joins_match(self, rows, where):
        triplets = make_triplets(rows)
        cond, params = where
        assert_triplets_agree(
            triplets,
            "SELECT grp, COUNT(*) AS c, SUM(val) AS s, AVG(val) AS av "
            f"FROM t {cond} GROUP BY grp ORDER BY grp",
            params,
        )
        assert_triplets_agree(
            triplets,
            "SELECT t.id, u.uid, u.tag FROM t JOIN u ON t.grp = u.grp "
            "ORDER BY t.id, u.uid",
        )

    @DIFF_SETTINGS
    @given(
        rows=rows_s,
        where=where_s,
        setter=st.sampled_from(
            [
                ("SET val = val + 1", ()),
                ("SET flag = 1 - flag", ()),
                ("SET val = ?, name = ?", (9.5, "bound")),
            ]
        ),
    )
    def test_update_delete_match(self, rows, where, setter):
        triplets = make_triplets(rows)
        assignment, set_params = setter
        cond, where_params = where
        outs = run_triplet(triplets, f"UPDATE t {assignment} {cond}".strip(),
                           tuple(set_params) + tuple(where_params))
        assert outs[0][1] == outs[1][1] == outs[2][1]
        outs = run_triplet(triplets, f"DELETE FROM t {cond}".strip(), where_params)
        assert outs[0][1] == outs[1][1] == outs[2][1]
        state = run_triplet(triplets, "SELECT * FROM t ORDER BY id")
        assert state[0] == state[1] == state[2]

    @DIFF_SETTINGS
    @given(rows=rows_s)
    def test_executemany_insert_matches(self, rows):
        """Multi-row INSERT through one batched compiled-plan invocation."""
        triplets = make_triplets([])
        for _ds, conn in triplets:
            conn.cursor().executemany(
                "INSERT INTO t (id, grp, val, name, flag) VALUES (?, ?, ?, ?, ?)", rows
            )
        state = run_triplet(triplets, "SELECT * FROM t ORDER BY id")
        assert state[0] == state[1] == state[2]
        assert state[0][0] == sorted(rows)


# ---------------------------------------------------------------------------
# Fused pipelining: storage layer
# ---------------------------------------------------------------------------


WRITE_IO = 0.02


@pytest.fixture
def slow_write_source():
    ds = DataSource("slow", latency=LatencyModel(write_io=WRITE_IO))
    ds.execute("CREATE TABLE acc (id INT PRIMARY KEY, bal INT)")
    ds.execute("INSERT INTO acc (id, bal) VALUES (1, 100), (2, 100), (3, 100), (4, 100)")
    return ds


class TestStoragePipeline:
    def test_per_statement_results(self, slow_write_source):
        conn = slow_write_source.connect()
        results = conn.execute_pipeline([
            ("UPDATE acc SET bal = bal - 10 WHERE id = 1", ()),
            ("SELECT bal FROM acc WHERE id = 1", ()),
            ("UPDATE acc SET bal = bal + 10 WHERE id = 2", ()),
        ])
        assert results[0].rowcount == 1
        assert list(results[1].rows) == [(90,)]
        assert results[2].rowcount == 1

    def test_write_io_coalesced_per_table(self, slow_write_source):
        """Four same-table writes pay the write-I/O slice once, not four
        times — the group-commit analog."""
        conn = slow_write_source.connect()
        writes = [(f"UPDATE acc SET bal = bal + 1 WHERE id = {i}", ()) for i in (1, 2, 3, 4)]
        start = time.monotonic()
        conn.execute_pipeline(writes)
        pipelined = time.monotonic() - start
        start = time.monotonic()
        for sql, params in writes:
            conn.execute(sql, params)
        serial = time.monotonic() - start
        assert serial >= 4 * WRITE_IO
        assert pipelined < 3 * WRITE_IO  # 1 coalesced slice + slack, not 4

    def test_mid_batch_error_keeps_earlier_effects(self, slow_write_source):
        """Serial equivalence: a failing statement propagates after the
        effects (and costs) of earlier statements have landed."""
        conn = slow_write_source.connect()
        with pytest.raises(Exception):
            conn.execute_pipeline([
                ("UPDATE acc SET bal = 0 WHERE id = 1", ()),
                ("UPDATE no_such_table SET x = 1", ()),
                ("UPDATE acc SET bal = 0 WHERE id = 2", ()),
            ])
        rows = conn.execute("SELECT id, bal FROM acc ORDER BY id", ()).fetchall()
        assert rows[0] == (1, 0)      # first statement applied
        assert rows[1] == (2, 100)    # statement after the error never ran

    def test_transaction_control_inside_batch(self, slow_write_source):
        conn = slow_write_source.connect()
        conn.execute_pipeline([
            ("BEGIN", ()),
            ("UPDATE acc SET bal = 55 WHERE id = 3", ()),
            ("ROLLBACK", ()),
        ])
        rows = conn.execute("SELECT bal FROM acc WHERE id = 3", ()).fetchall()
        assert rows == [(100,)]


# ---------------------------------------------------------------------------
# Fused pipelining: engine + adaptor layers
# ---------------------------------------------------------------------------


@pytest.fixture
def jdbc_connection(fleet, paper_rule):
    from repro.adaptors import ShardingDataSource, ShardingRuntime

    runtime = ShardingRuntime(fleet, paper_rule, max_connections_per_query=2)
    conn = ShardingDataSource(runtime).get_connection()
    conn.execute(
        "INSERT INTO t_user (uid, name, age) VALUES (1, 'alice', 30), (2, 'bob', 25)"
    )
    yield conn
    conn.close()
    runtime.close()


class TestEnginePipeline:
    def test_batch_results_in_order(self, jdbc_connection):
        results = jdbc_connection.execute_pipeline([
            ("UPDATE t_user SET age = 31 WHERE uid = 1", ()),
            ("SELECT name, age FROM t_user WHERE uid = 1", ()),
            ("INSERT INTO t_order (oid, uid, amount) VALUES (?, ?, ?)", (10, 1, 5.0)),
            ("SELECT amount FROM t_order WHERE uid = 1", ()),
        ])
        assert results[0].rowcount == 1
        assert results[1].fetchall() == [("alice", 31)]
        assert results[2].rowcount == 1
        assert results[3].fetchall() == [(5.0,)]

    def test_multi_unit_statement_splits_batch(self, jdbc_connection):
        """A broadcast read inside the batch flushes and fans out, then
        pipelining resumes; results stay positional."""
        results = jdbc_connection.execute_pipeline([
            ("UPDATE t_user SET age = 40 WHERE uid = 1", ()),
            ("SELECT COUNT(*) FROM t_user", ()),
            ("SELECT age FROM t_user WHERE uid = 1", ()),
        ])
        assert results[0].rowcount == 1
        assert results[1].fetchall() == [(2,)]
        assert results[2].fetchall() == [(40,)]

    def test_transaction_rollback_undoes_pipelined_writes(self, jdbc_connection):
        jdbc_connection.begin()
        results = jdbc_connection.execute_pipeline([
            ("UPDATE t_user SET age = 99 WHERE uid = 1", ()),
            ("SELECT age FROM t_user WHERE uid = 1", ()),
        ])
        assert results[1].fetchall() == [(99,)]  # reads its own write
        jdbc_connection.rollback()
        rows = jdbc_connection.execute("SELECT age FROM t_user WHERE uid = 1").fetchall()
        assert rows == [(30,)]

    def test_control_statements_rejected(self, jdbc_connection):
        for sql in ("BEGIN", "COMMIT", "SET sql_show = true", "SHOW TABLES"):
            with pytest.raises(UnsupportedSQLError):
                jdbc_connection.execute_pipeline([(sql, ())])

    def test_pipeline_metrics_counted(self, jdbc_connection):
        engine = jdbc_connection.runtime.engine
        before = engine.executor.metrics.snapshot()
        jdbc_connection.execute_pipeline([
            ("UPDATE t_user SET age = 26 WHERE uid = 2", ()),
            ("SELECT age FROM t_user WHERE uid = 2", ()),
        ])
        after = engine.executor.metrics.snapshot()
        assert after["pipeline_batches"] == before["pipeline_batches"] + 1
        assert after["pipelined_statements"] == before["pipelined_statements"] + 2


# ---------------------------------------------------------------------------
# Work-stealing fan-out
# ---------------------------------------------------------------------------


SHARDS = 24


@pytest.fixture
def skewed_fleet():
    """One source holding every shard: all fan-out tasks seed onto one
    worker deque (source affinity), so idle workers must steal."""
    ds = DataSource("ds0", pool_size=SHARDS + 4)
    for i in range(SHARDS):
        ds.execute(f"CREATE TABLE t_big_{i} (id INT PRIMARY KEY, v INT)")
        ds.execute(f"INSERT INTO t_big_{i} (id, v) VALUES ({i}, {i * 10})")
    rule = build_auto_table_rule(
        "t_big", ["ds0"], sharding_column="id", algorithm_type="MOD",
        properties={"sharding-count": SHARDS},
    )
    return {"ds0": ds}, ShardingRule([rule], default_data_source="ds0")


def broadcast_units(rule, sql):
    from repro.engine import build_context, rewrite, route

    context = build_context(parse(sql), sql, (), rule)
    return rewrite(context, route(context, rule)).execution_units


class TestWorkStealing:
    def test_skewed_route_steals_and_completes(self, skewed_fleet):
        sources, rule = skewed_fleet
        engine = ExecutionEngine(sources, max_connections_per_query=SHARDS)
        units = broadcast_units(rule, "SELECT * FROM t_big")
        assert len(units) == SHARDS
        result = engine.execute(units, is_query=True)
        rows = sorted(row for shard in result.results for row in shard)
        assert rows == [(i, i * 10) for i in range(SHARDS)]
        snap = engine.metrics.snapshot()
        assert snap["queued_tasks"] == SHARDS
        assert snap["steals"] > 0
        assert snap["stolen_tasks"] > 0
        result.release()
        engine.close()

    def test_row_results_preserve_unit_order(self, skewed_fleet):
        """Connection-strictly fan-out (θ > 1) under stealing still
        reports every shard exactly once."""
        sources, rule = skewed_fleet
        engine = ExecutionEngine(sources, max_connections_per_query=4)
        units = broadcast_units(rule, "SELECT * FROM t_big")
        result = engine.execute(units, is_query=True)
        rows = sorted(row for shard in result.results for row in shard)
        assert rows == [(i, i * 10) for i in range(SHARDS)]
        engine.close()


class TestCloseSemantics:
    def test_close_is_idempotent(self, skewed_fleet):
        sources, _rule = skewed_fleet
        engine = ExecutionEngine(sources)
        engine.close()
        engine.close()  # second close is a no-op, not an error

    def test_execute_rejected_after_close(self, skewed_fleet):
        sources, rule = skewed_fleet
        engine = ExecutionEngine(sources, max_connections_per_query=SHARDS)
        units = broadcast_units(rule, "SELECT * FROM t_big")
        engine.close()
        with pytest.raises(ExecutionError, match="closed"):
            engine.execute(units, is_query=True)
        with pytest.raises(ExecutionError, match="closed"):
            engine.execute_pipeline("ds0", [(parse("SELECT 1"), (), True)])

    def test_acquire_batch_capped_by_statement_deadline(self, skewed_fleet):
        """An exhausted pool fails a deadlined statement promptly with
        DeadlineExceededError, not after the 10 s acquire default."""
        sources, rule = skewed_fleet
        ds = DataSource("tiny", pool_size=1)
        ds.execute("CREATE TABLE t_big_0 (id INT PRIMARY KEY, v INT)")
        engine = ExecutionEngine(
            {"ds0": ds},
            resilience=ResiliencePolicy(statement_timeout=0.2, max_retries=0),
        )
        hog = ds.pool.acquire()  # exhaust the pool
        units = broadcast_units(
            ShardingRule([build_auto_table_rule(
                "t_big", ["ds0"], sharding_column="id", algorithm_type="MOD",
                properties={"sharding-count": 1},
            )], default_data_source="ds0"),
            "SELECT * FROM t_big",
        )
        start = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            engine.execute(units, is_query=True)
        assert time.monotonic() - start < 5.0
        ds.pool.release(hog)
        engine.close()
