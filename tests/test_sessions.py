"""SessionContext: thread-portable session state.

The refactor's contract: causal replication tokens, primary pinning,
transaction pinning and the metadata/publish guards belong to a *session*
(one SessionContext object), not to whichever OS thread happens to run a
statement. These tests drive every thread boundary — the work-stealing
executor's steal path, ``ExecutionEngine.submit`` (federation fan-out),
``execute_pipeline`` flushes — and check the session state lands where it
must, including differentially against single-threaded execution.
"""

import threading

import pytest

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.distsql import execute_distsql
from repro.session import SessionContext, activate, current_session, try_current
from repro.storage import DataSource, ReplicaGroup
from repro.storage.replication import (
    pin_primary,
    primary_pinned,
    reset_session,
    session_token,
)


@pytest.fixture(autouse=True)
def fresh_session():
    reset_session()
    yield
    reset_session()


# ---------------------------------------------------------------------------
# The SessionContext object + contextvar plumbing
# ---------------------------------------------------------------------------


class TestSessionContext:
    def test_tokens_pin_and_describe(self):
        session = SessionContext(kind="jdbc")
        assert session.token("g") == 0
        session.note_write("g", 3)
        session.note_write("g", 2)  # never regresses
        assert session.token("g") == 3
        assert not session.pinned
        with session.pin():
            assert session.pinned
            with session.pin():
                assert session.pin_depth == 2
        assert not session.pinned
        info = session.describe()
        assert info["kind"] == "jdbc" and info["causal_groups"] == 1
        session.reset()
        assert session.token("g") == 0

    def test_guards_are_reentrant_and_keyed(self):
        session = SessionContext()
        key_a, key_b = object(), object()
        with session.guard(key_a):
            with session.guard(key_a):
                assert session.guard_depth(key_a) == 2
                assert session.guard_depth(key_b) == 0
        assert session.guard_depth(key_a) == 0

    def test_thread_root_sessions_are_per_thread(self):
        """Un-activated threads keep the old thread-local scoping."""
        current_session().note_write("g", 9)
        seen = {}

        def probe():
            seen["token"] = session_token("g")
            seen["session"] = current_session()

        thread = threading.Thread(target=probe)
        thread.start()
        thread.join()
        assert seen["token"] == 0
        assert seen["session"] is not current_session()

    def test_activate_makes_a_session_portable(self):
        session = SessionContext()
        seen = {}

        def worker():
            with activate(session):
                current_session().note_write("g", 5)
                with current_session().pin():
                    seen["pinned_inside"] = primary_pinned()
            # restored: the thread's own root session again
            seen["after"] = try_current() is not session

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert session.token("g") == 5
        assert seen["pinned_inside"] is True
        assert seen["after"] is True

    def test_engine_submit_propagates_the_callers_session(self):
        runtime = ShardingRuntime({"ds0": DataSource("ds0")})
        try:
            mine = current_session()
            future = runtime.engine.executor.submit(current_session)
            assert future.result(timeout=5) is mine
            with pin_primary():
                assert runtime.engine.executor.submit(primary_pinned).result(timeout=5)
            assert not runtime.engine.executor.submit(primary_pinned).result(timeout=5)
        finally:
            runtime.close()

    def test_metadata_guard_follows_the_session_not_the_thread(self):
        runtime = ShardingRuntime({"ds0": DataSource("ds0")})
        try:
            manager = runtime.metadata
            seen = {}

            def mutation(draft):
                writer_session = current_session()

                def probe():
                    # another thread resuming the writer's session sees
                    # the in-mutation flag; its own root session does not
                    seen["other_thread_own_session"] = manager.in_mutation
                    with activate(writer_session):
                        seen["other_thread_same_session"] = manager.in_mutation

                thread = threading.Thread(target=probe)
                thread.start()
                thread.join()
                seen["writer"] = manager.in_mutation

            manager.mutate(mutation, reason="test probe")
            assert seen["writer"] is True
            assert seen["other_thread_same_session"] is True
            assert seen["other_thread_own_session"] is False
            assert manager.in_mutation is False
        finally:
            runtime.close()


# ---------------------------------------------------------------------------
# Propagation through the execution stack (replicas + lag + fan-out)
# ---------------------------------------------------------------------------


def make_replicated_sharded_runtime(shards=4, lag=30.0):
    """4-shard table, each shard a replica group with one very-laggy
    replica: only causal tokens can make read-your-writes hold."""
    sources, groups = {}, {}
    for i in range(shards):
        primary = DataSource(f"ds{i}")
        group = ReplicaGroup(primary, seed=i)
        replica = DataSource(f"ds{i}_r0")
        group.add_replica(replica, lag=lag)
        sources[f"ds{i}"] = primary
        sources[f"ds{i}_r0"] = replica
        groups[f"ds{i}"] = group
    runtime = ShardingRuntime(sources)
    resources = ", ".join(f"ds{i}" for i in range(shards))
    execute_distsql(
        f"CREATE SHARDING TABLE RULE t_user (RESOURCES({resources}), "
        f"SHARDING_COLUMN=uid, TYPE=hash_mod, "
        f"PROPERTIES('sharding-count'={shards}))",
        runtime,
    )
    runtime.engine.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, v INT)")
    for i in range(shards):
        runtime.apply_rwsplit_rule(f"ds{i}", f"ds{i}", [f"ds{i}_r0"])
    for group in groups.values():
        group.sync()
    return runtime, groups


ALL_UIDS = "(0,1,2,3,4,5,6,7)"


class TestExecutorPropagation:
    def _fanout_write_workload(self, fanout_workers):
        """Seed, then run one multi-shard fan-out UPDATE; return the
        session's causal tokens and the groups' log tips."""
        runtime, groups = make_replicated_sharded_runtime()
        runtime.engine.executor.fanout_workers = fanout_workers
        try:
            conn = ShardingDataSource(runtime).get_connection()
            for uid in range(8):
                conn.execute(f"INSERT INTO t_user (uid, v) VALUES ({uid}, 0)")
            conn.execute(f"UPDATE t_user SET v = 42 WHERE uid IN {ALL_UIDS}")
            tokens = {name: conn.session.token(name) for name in groups}
            tips = {name: group.last_lsn() for name, group in groups.items()}
            # read-your-writes: 30s-laggy replicas cannot cover the token,
            # so the read falls back to the primary and sees the update
            assert conn.execute(
                "SELECT v FROM t_user WHERE uid = 3").fetchall() == [(42,)]
            # a brand-new session has no token: it is allowed the stale
            # replica, which hasn't even applied the inserts yet
            fresh = ShardingDataSource(runtime).get_connection()
            assert fresh.execute(
                "SELECT v FROM t_user WHERE uid = 3").fetchall() != [(42,)]
            steals = runtime.engine.executor.metrics.steals
            return tokens, tips, steals
        finally:
            runtime.close()

    def test_causal_tokens_survive_the_steal_path(self):
        """Differential: fan-out over 8 workers (steals happen) must
        stamp exactly the tokens single-threaded execution stamps."""
        tokens_multi, tips_multi, _ = self._fanout_write_workload(8)
        tokens_single, tips_single, _ = self._fanout_write_workload(1)
        assert tokens_multi == tips_multi  # every shard's commit landed
        assert tokens_single == tips_single
        assert tokens_multi == tokens_single  # thread count is invisible

    def test_pinned_transaction_survives_fanout(self):
        """A multi-shard statement inside a transaction pins per-source
        connections from several workers at once; the commit then stamps
        the session's tokens on the committing thread."""
        runtime, groups = make_replicated_sharded_runtime()
        try:
            conn = ShardingDataSource(runtime).get_connection()
            for uid in range(8):
                conn.execute(f"INSERT INTO t_user (uid, v) VALUES ({uid}, 0)")
            conn.begin()
            result = conn.execute(
                f"UPDATE t_user SET v = 7 WHERE uid IN {ALL_UIDS}")
            assert result.rowcount == 8
            assert conn.session.in_transaction
            # reads inside the transaction observe its uncommitted writes
            assert conn.execute(
                "SELECT v FROM t_user WHERE uid = 5").fetchall() == [(7,)]
            tokens_before = {n: conn.session.token(n) for n in groups}
            conn.commit()
            assert not conn.session.in_transaction
            for name, group in groups.items():
                assert conn.session.token(name) == group.last_lsn()
                assert conn.session.token(name) > tokens_before[name]
            # read-your-writes post-commit despite 30s replica lag
            assert conn.execute(
                "SELECT v FROM t_user WHERE uid = 5").fetchall() == [(7,)]
        finally:
            runtime.close()

    def test_execute_pipeline_flushes_keep_the_session(self):
        runtime, groups = make_replicated_sharded_runtime()
        try:
            conn = ShardingDataSource(runtime).get_connection()
            conn.execute_pipeline(
                [(f"INSERT INTO t_user (uid, v) VALUES ({u}, {u})", ())
                 for u in range(8)])
            for name, group in groups.items():
                assert conn.session.token(name) == group.last_lsn()
            # pipelined writes are immediately visible to their session
            assert conn.execute(
                "SELECT v FROM t_user WHERE uid = 6").fetchall() == [(6,)]
        finally:
            runtime.close()

    def test_tokens_stay_per_connection_not_per_thread(self):
        """Two connections driven from ONE thread: each session's tokens
        are its own (the thread-local design collapsed them)."""
        runtime, groups = make_replicated_sharded_runtime()
        try:
            writer = ShardingDataSource(runtime).get_connection()
            reader = ShardingDataSource(runtime).get_connection()
            writer.execute("INSERT INTO t_user (uid, v) VALUES (1, 10)")
            assert any(writer.session.token(n) for n in groups)
            assert all(reader.session.token(n) == 0 for n in groups)
        finally:
            runtime.close()


# ---------------------------------------------------------------------------
# SHOW SESSIONS / the registry
# ---------------------------------------------------------------------------


class TestSessionRegistry:
    def test_show_sessions_lists_and_drops_connections(self):
        runtime = ShardingRuntime({"ds0": DataSource("ds0")})
        try:
            conn = ShardingDataSource(runtime).get_connection()
            conn.execute("SELECT 1")
            result = execute_distsql("SHOW SESSIONS", runtime)
            assert result.columns[0] == "id"
            rows = {row[0]: row for row in result.rows}
            mine = rows[conn.session.session_id]
            assert mine[1] == "jdbc"
            assert mine[4] >= 1  # statements
            conn.close()
            result = execute_distsql("SHOW SESSIONS", runtime)
            assert conn.session.session_id not in {r[0] for r in result.rows}
        finally:
            runtime.close()

    def test_sessions_served_counts(self):
        runtime = ShardingRuntime({"ds0": DataSource("ds0")})
        try:
            before = runtime.sessions.sessions_served
            for _ in range(3):
                ShardingDataSource(runtime).get_connection().close()
            assert runtime.sessions.sessions_served == before + 3
            assert len(runtime.sessions) == 0
        finally:
            runtime.close()
