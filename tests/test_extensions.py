"""Tests for extensions beyond the paper's shipped feature set:
automatic circuit-breaker tripping and asynchronous BASE commit
(the paper's stated future work)."""

import time

import pytest

from repro.exceptions import BaseTransactionError, CircuitBreakerOpenError
from repro.features import CircuitBreakerFeature, CircuitState
from repro.storage import DataSource
from repro.transaction import TransactionCoordinator, TransactionManager, TransactionType


class TestAutomaticCircuitBreaking:
    def test_execution_failures_trip_the_breaker(self, seeded_engine, fleet):
        breaker = CircuitBreakerFeature(failure_threshold=2, reset_timeout=60)
        seeded_engine.add_feature(breaker)
        fleet["ds0"].database.fail_next("statement", times=2)
        for _ in range(2):
            with pytest.raises(Exception):
                seeded_engine.execute("SELECT * FROM t_user WHERE uid = 2")
        assert breaker.state is CircuitState.OPEN
        with pytest.raises(CircuitBreakerOpenError):
            seeded_engine.execute("SELECT * FROM t_user WHERE uid = 2")

    def test_success_resets_failure_streak(self, seeded_engine, fleet):
        breaker = CircuitBreakerFeature(failure_threshold=2, reset_timeout=60)
        seeded_engine.add_feature(breaker)
        fleet["ds0"].database.fail_next("statement", times=1)
        with pytest.raises(Exception):
            seeded_engine.execute("SELECT * FROM t_user WHERE uid = 2")
        # a success in between clears the streak
        seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        fleet["ds0"].database.fail_next("statement", times=1)
        with pytest.raises(Exception):
            seeded_engine.execute("SELECT * FROM t_user WHERE uid = 2")
        assert breaker.state is CircuitState.CLOSED


@pytest.fixture
def base_pair():
    sources = {"ds0": DataSource("ds0"), "ds1": DataSource("ds1")}
    for ds in sources.values():
        ds.execute("CREATE TABLE acct (id INT PRIMARY KEY, balance INT NOT NULL)")
        ds.execute("INSERT INTO acct (id, balance) VALUES (1, 100)")
    manager = TransactionManager(
        sources, TransactionType.BASE,
        coordinator=TransactionCoordinator(rpc_delay=0.002),
    )
    return sources, manager


class TestAsyncBaseCommit:
    def test_async_commit_applies_eventually(self, base_pair):
        sources, manager = base_pair
        txn = manager.begin()
        txn.connection_for("ds0").execute("UPDATE acct SET balance = balance - 5 WHERE id = 1")
        txn.connection_for("ds1").execute("UPDATE acct SET balance = balance + 5 WHERE id = 1")
        future = txn.commit_async()
        assert future.result(timeout=10) is True
        assert sources["ds0"].execute("SELECT balance FROM acct WHERE id = 1") == [(95,)]
        assert sources["ds1"].execute("SELECT balance FROM acct WHERE id = 1") == [(105,)]

    def test_async_commit_returns_before_completion(self, base_pair):
        """The whole point: the caller does not wait for the TC round trips."""
        sources, manager = base_pair
        txn = manager.begin()
        txn.connection_for("ds0").execute("UPDATE acct SET balance = 0 WHERE id = 1")
        txn.connection_for("ds1").execute("UPDATE acct SET balance = 0 WHERE id = 1")
        start = time.perf_counter()
        future = txn.commit_async()
        submit_time = time.perf_counter() - start
        future.result(timeout=10)
        # submission returns in well under one TC RPC (2 ms here)
        assert submit_time < 0.002

    def test_async_commit_surfaces_compensation_failure(self, base_pair):
        sources, manager = base_pair
        txn = manager.begin()
        txn.connection_for("ds0").execute("UPDATE acct SET balance = 7 WHERE id = 1")
        txn.connection_for("ds1").execute("UPDATE acct SET balance = 7 WHERE id = 1")
        sources["ds1"].database.fail_next("commit")
        future = txn.commit_async()
        with pytest.raises(BaseTransactionError):
            future.result(timeout=10)
        # compensated: both balances restored
        assert sources["ds0"].execute("SELECT balance FROM acct WHERE id = 1") == [(100,)]
        assert sources["ds1"].execute("SELECT balance FROM acct WHERE id = 1") == [(100,)]

    def test_async_is_faster_for_the_caller_than_sync(self, base_pair):
        sources, manager = base_pair

        def one_txn():
            txn = manager.begin()
            txn.connection_for("ds0").execute("UPDATE acct SET balance = balance + 1 WHERE id = 1")
            txn.connection_for("ds1").execute("UPDATE acct SET balance = balance + 1 WHERE id = 1")
            return txn

        txn = one_txn()
        start = time.perf_counter()
        txn.commit()
        sync_time = time.perf_counter() - start

        txn = one_txn()
        start = time.perf_counter()
        future = txn.commit_async()
        async_submit = time.perf_counter() - start
        future.result(timeout=10)

        assert async_submit < sync_time / 3
