"""Tests for the command-line surfaces: the SQL console and the bench CLI."""

import subprocess
import sys



def run_console(stdin: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        input=stdin, capture_output=True, text=True, timeout=120,
    )


class TestConsole:
    def test_full_session(self):
        script = (
            "REGISTER RESOURCE ds0, ds1;\n"
            "CREATE SHARDING TABLE RULE t (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=k, PROPERTIES('sharding-count'=2));\n"
            "CREATE TABLE t (k INT PRIMARY KEY, v VARCHAR(8));\n"
            "INSERT INTO t (k, v) VALUES (1,'a'),(2,'b');\n"
            "SELECT * FROM t ORDER BY k;\n"
            "exit;\n"
        )
        completed = run_console(script)
        assert completed.returncode == 0, completed.stderr
        assert "registered 2 resource(s)" in completed.stdout
        assert "2 row(s)" in completed.stdout

    def test_multiline_statement(self):
        script = (
            "REGISTER RESOURCE ds0;\n"
            "SELECT 1 AS a,\n"
            "       2 AS b;\n"
        )
        completed = run_console(script)
        assert completed.returncode == 0, completed.stderr
        assert "1 | 2" in completed.stdout

    def test_error_does_not_kill_session(self):
        script = (
            "SELECT * FROM no_such_table;\n"
            "REGISTER RESOURCE ds0;\n"
        )
        completed = run_console(script)
        assert completed.returncode == 0
        assert "ERROR:" in completed.stdout
        assert "registered 1 resource(s)" in completed.stdout

    def test_execute_flag(self):
        completed = run_console("", "--execute", "SHOW SHARDING ALGORITHMS")
        assert completed.returncode == 0
        assert "MOD" in completed.stdout


class TestBenchCLI:
    def test_sysbench_run(self):
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.bench",
                "--system", "ssj", "--scenario", "point_select",
                "--table-size", "2000", "--threads", "2", "--duration", "0.5",
                "--warmup", "0.1",
            ],
            capture_output=True, text=True, timeout=180,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "TPS" in completed.stdout
        assert "0 errors" in completed.stdout

    def test_tpcc_run(self):
        completed = subprocess.run(
            [
                sys.executable, "-m", "repro.bench",
                "--workload", "tpcc", "--system", "ssj",
                "--sources", "2", "--tables-per-source", "1",
                "--threads", "2", "--duration", "0.5", "--warmup", "0.1",
            ],
            capture_output=True, text=True, timeout=180,
        )
        assert completed.returncode == 0, completed.stderr[-2000:]
        assert "90T" in completed.stdout

    def test_bad_system_rejected(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.bench", "--system", "oracle9i"],
            capture_output=True, text=True, timeout=60,
        )
        assert completed.returncode != 0
