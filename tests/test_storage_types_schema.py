"""Unit tests for the storage type system and schema normalization."""

import pytest

from repro.exceptions import ColumnNotFoundError, TypeCheckError
from repro.sql import ast, parse
from repro.storage import Column, TableSchema, make_type


class TestColumnTypes:
    def test_int_accepts_int(self):
        assert make_type("INT").coerce(5) == 5

    def test_int_accepts_integral_float(self):
        assert make_type("INT").coerce(5.0) == 5

    def test_int_accepts_numeric_string(self):
        assert make_type("BIGINT").coerce("17") == 17

    def test_int_rejects_text(self):
        with pytest.raises(TypeCheckError):
            make_type("INT").coerce("abc")

    def test_int_range_enforced(self):
        with pytest.raises(TypeCheckError):
            make_type("SMALLINT").coerce(2**20)
        with pytest.raises(TypeCheckError):
            make_type("INT").coerce(2**40)
        assert make_type("BIGINT").coerce(2**40) == 2**40

    def test_float_coercions(self):
        assert make_type("DOUBLE").coerce(1) == 1.0
        assert make_type("FLOAT").coerce("2.5") == 2.5
        assert isinstance(make_type("DECIMAL").coerce(3), float)

    def test_varchar_length_enforced(self):
        t = make_type("VARCHAR", 3)
        assert t.coerce("abc") == "abc"
        with pytest.raises(TypeCheckError):
            t.coerce("abcd")

    def test_varchar_accepts_numbers(self):
        assert make_type("VARCHAR", 10).coerce(42) == "42"

    def test_boolean(self):
        t = make_type("BOOLEAN")
        assert t.coerce(True) is True
        assert t.coerce(0) is False
        with pytest.raises(TypeCheckError):
            t.coerce("yes")

    def test_timestamp_from_iso(self):
        value = make_type("TIMESTAMP").coerce("2021-11-10 12:00:00")
        assert value.year == 2021

    def test_timestamp_rejects_garbage(self):
        with pytest.raises(TypeCheckError):
            make_type("TIMESTAMP").coerce("not a date")

    def test_null_passes_all_types(self):
        for name in ("INT", "VARCHAR", "BOOLEAN", "TIMESTAMP"):
            assert make_type(name).coerce(None) is None

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeCheckError):
            make_type("GEOMETRY")

    def test_str_rendering(self):
        assert str(make_type("VARCHAR", 12)) == "VARCHAR(12)"
        assert str(make_type("INT")) == "INT"


def make_schema():
    return TableSchema(
        name="t",
        columns=[
            Column("id", make_type("INT"), not_null=True, auto_increment=True),
            Column("name", make_type("VARCHAR", 32), not_null=True),
            Column("score", make_type("FLOAT"), default=0),
        ],
        primary_key=["id"],
    )


class TestTableSchema:
    def test_column_lookup_case_insensitive(self):
        schema = make_schema()
        assert schema.column("NAME").name == "name"
        assert schema.has_column("Id")

    def test_unknown_column_raises(self):
        with pytest.raises(ColumnNotFoundError):
            make_schema().column("nope")

    def test_bad_primary_key_rejected(self):
        with pytest.raises(ColumnNotFoundError):
            TableSchema(name="t", columns=[Column("a", make_type("INT"))], primary_key=["b"])

    def test_normalize_fills_default(self):
        row = make_schema().normalize_row({"id": 1, "name": "x"})
        assert row["score"] == 0.0

    def test_normalize_rejects_unknown_column(self):
        with pytest.raises(ColumnNotFoundError):
            make_schema().normalize_row({"id": 1, "name": "x", "bogus": 1})

    def test_normalize_enforces_not_null(self):
        with pytest.raises(TypeCheckError):
            make_schema().normalize_row({"id": 1})

    def test_auto_increment_may_be_null(self):
        row = make_schema().normalize_row({"name": "x"})
        assert row["id"] is None  # filled by the table

    def test_from_ast(self):
        stmt = parse("CREATE TABLE t (id INT PRIMARY KEY, v VARCHAR(8))")
        schema = TableSchema.from_ast(stmt)
        assert schema.primary_key == ["id"]
        assert schema.column("v").type.length == 8

    def test_clone_renamed(self):
        clone = make_schema().clone_renamed("t_0")
        assert clone.name == "t_0"
        assert clone.column_names == ["id", "name", "score"]
