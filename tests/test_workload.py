"""Tests for the workload-intelligence layer.

Covers statement-digest normalization, the bounded digest table, the
space-saving hot-key sketch, SLO burn accounting, the DistSQL surfaces
(SHOW STATEMENT DIGESTS / SHARD HEAT / HOT KEYS / SLO, RESET WORKLOAD),
slow-log digest grouping, idempotent resource teardown, and Prometheus
text-exposition conformance.
"""

import re

import pytest

from repro.adaptors import ShardingRuntime
from repro.distsql import execute_distsql
from repro.exceptions import DistSQLError
from repro.observability.metrics import (
    MetricsRegistry,
    _escape_label_value,
)
from repro.observability.workload import (
    DigestTable,
    SLObjective,
    SLOTracker,
    SpaceSaving,
    digest_of,
    normalize_sql,
)


@pytest.fixture
def runtime():
    rt = ShardingRuntime()
    yield rt
    rt.close()


@pytest.fixture
def configured(runtime):
    execute_distsql("REGISTER RESOURCE ds0, ds1", runtime)
    execute_distsql(
        "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
        "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=2))",
        runtime,
    )
    runtime.engine.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, v INT)")
    return runtime


def drive_traffic(rt, hot_uid=7, hot_count=12, spread=8):
    """Inserts plus a skewed point-select mix (hot_uid dominates)."""
    for i in range(1, spread + 1):
        rt.engine.execute(f"INSERT INTO t_user (uid, v) VALUES ({i}, {i * 10})")
    for _ in range(hot_count):
        rt.engine.execute("SELECT v FROM t_user WHERE uid = ?", (hot_uid,)).fetchall()
    for i in range(1, spread + 1):
        rt.engine.execute("SELECT v FROM t_user WHERE uid = ?", (i,)).fetchall()


# ---------------------------------------------------------------------------
# Digest normalization
# ---------------------------------------------------------------------------


class TestNormalization:
    @pytest.mark.parametrize(
        "sql, expected",
        [
            ("SELECT * FROM t WHERE a = 'x''y' AND b = 10",
             "SELECT * FROM t WHERE a = ? AND b = ?"),
            ("SELECT c FROM sbtest_1 WHERE id = 5",
             "SELECT c FROM sbtest_1 WHERE id = ?"),  # identifier digits survive
            ("SELECT * FROM t WHERE id IN (1, 2, 3)",
             "SELECT * FROM t WHERE id IN (?)"),
            ("SELECT * FROM t WHERE id IN (?, ?, ?, ?)",
             "SELECT * FROM t WHERE id IN (?)"),
            ("INSERT INTO t (a, b) VALUES (1, 2), (3, 4), (5, 6)",
             "INSERT INTO t (a, b) VALUES (?)"),
            ("  SELECT   1 ;  ", "SELECT ?"),
            ("SELECT * FROM t WHERE x = 1.5e3 OR y = 2E-2",
             "SELECT * FROM t WHERE x = ? OR y = ?"),
        ],
        ids=["literals", "identifiers", "in-list", "placeholder-list",
             "multi-row-insert", "whitespace", "scientific"],
    )
    def test_normalize(self, sql, expected):
        assert normalize_sql(sql) == expected

    def test_same_shape_same_digest(self):
        a, _ = digest_of("SELECT v FROM t WHERE uid = 1")
        b, _ = digest_of("SELECT v FROM t WHERE uid = 999")
        c, _ = digest_of("SELECT v FROM t WHERE uid = ?")
        assert a == b == c

    def test_digest_is_case_insensitive(self):
        assert digest_of("select 1")[0] == digest_of("SELECT 1")[0]

    def test_different_shapes_differ(self):
        assert digest_of("SELECT a FROM t")[0] != digest_of("SELECT b FROM t")[0]

    def test_batch_sizes_share_a_digest(self):
        small, _ = digest_of("INSERT INTO t (a) VALUES (1), (2)")
        large, _ = digest_of(
            "INSERT INTO t (a) VALUES " + ", ".join(f"({i})" for i in range(50))
        )
        assert small == large


class TestDigestTable:
    def test_touch_returns_same_stats(self):
        table = DigestTable(capacity=4)
        first = table.touch("d1", "SELECT ?")
        second = table.touch("d1", "SELECT ?")
        assert first is second
        assert table.evicted == 0

    def test_eviction_drops_least_recently_seen(self):
        table = DigestTable(capacity=2)
        table.touch("a", "A")
        table.touch("b", "B")
        table.touch("a", "A")  # refresh a; b is now oldest
        table.touch("c", "C")
        assert set(table.entries) == {"a", "c"}
        assert table.evicted == 1

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            DigestTable(capacity=0)


# ---------------------------------------------------------------------------
# Space-saving sketch
# ---------------------------------------------------------------------------


class TestSpaceSaving:
    def test_exact_below_capacity(self):
        sketch = SpaceSaving(capacity=8)
        for _ in range(5):
            sketch.offer("x")
        sketch.offer("y", weight=3.0)
        top = dict((k, (c, e)) for k, c, e in sketch.top())
        assert top["x"] == (5.0, 0.0)
        assert top["y"] == (3.0, 0.0)
        assert sketch.total == 8.0

    def test_heavy_hitter_guaranteed(self):
        # "hot" has true share 0.5 > 1/capacity, interleaved with 40
        # one-off keys that force evictions: it must stay monitored, its
        # estimate must never undercount, and count - error is a lower
        # bound that cannot exceed the true frequency.
        sketch = SpaceSaving(capacity=4)
        for i in range(40):
            sketch.offer("hot")
            sketch.offer(f"cold-{i}")
        assert "hot" in sketch.counters
        count, error = sketch.counters["hot"]
        assert count >= 40
        assert count - error <= 40

    def test_top_is_sorted_and_limited(self):
        sketch = SpaceSaving(capacity=8)
        for key, n in (("a", 3), ("b", 9), ("c", 6)):
            sketch.offer(key, weight=n)
        top = sketch.top(2)
        assert [k for k, _, _ in top] == ["b", "c"]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpaceSaving(capacity=0)


# ---------------------------------------------------------------------------
# SLO tracking
# ---------------------------------------------------------------------------


class TestSLOTracker:
    def test_no_burn_when_fast(self):
        tracker = SLOTracker()
        for _ in range(200):
            tracker.record("standard", 0.0001, 1.0)
        slo = tracker.routes["standard"]
        assert slo.breaches == 0.0
        assert slo.burn_rate == 0.0
        assert tracker.alerts_total == 0

    def test_no_alert_before_min_statements(self):
        tracker = SLOTracker()
        for _ in range(int(tracker.min_statements) - 1):
            tracker.record("standard", 1.0, 1.0)  # every statement breaches
        assert tracker.alerts_total == 0

    def test_alert_is_edge_triggered(self):
        tracker = SLOTracker([SLObjective("std", 0.01, 0.5)])
        tracker.min_statements = 10.0
        for _ in range(20):
            tracker.record("std", 1.0, 1.0)  # burning hard
        assert tracker.alerts_total == 1  # one crossing, not 10 alerts
        alert = tracker.alerts[-1]
        assert alert["route_type"] == "std"
        assert alert["burn_rate"] > 1.0
        # recover: enough fast statements to drop burn under 1...
        for _ in range(40):
            tracker.record("std", 0.0001, 1.0)
        assert tracker.routes["std"].burn_rate <= 1.0
        # ...then a fresh burn raises a second alert
        for _ in range(120):
            tracker.record("std", 1.0, 1.0)
        assert tracker.alerts_total == 2

    def test_unknown_route_uses_wildcard(self):
        tracker = SLOTracker()
        tracker.record("exotic", 0.001, 1.0)
        assert tracker.routes["exotic"].objective.route_type == "*"

    def test_clear(self):
        tracker = SLOTracker()
        tracker.record("standard", 1.0, 200.0)
        tracker.clear()
        assert tracker.routes == {}
        assert tracker.alerts_total == 0


# ---------------------------------------------------------------------------
# End-to-end: engine traffic -> DistSQL surfaces
# ---------------------------------------------------------------------------


class TestWorkloadEndToEnd:
    def test_statement_digests(self, configured):
        drive_traffic(configured)
        result = execute_distsql("SHOW STATEMENT DIGESTS", configured)
        assert result.columns[0] == "digest"
        by_sql = {row[-1]: row for row in result.rows}
        select_shape = "SELECT v FROM t_user WHERE uid = ?"
        assert select_shape in by_sql
        digest, calls, errors, rows, *_ = by_sql[select_shape]
        assert calls == 20  # 12 hot + 8 spread, warmup weight 1
        assert errors == 0
        assert rows == 20  # one row per point select, counted via the sink
        insert_shape = "INSERT INTO t_user (uid, v) VALUES (?)"
        assert insert_shape in by_sql
        assert by_sql[insert_shape][1] == 8

    def test_digest_errors_recorded(self, configured):
        with pytest.raises(Exception):
            configured.engine.execute("SELECT v FROM no_such_table WHERE uid = 1")
        report = configured.observability.workload.digest_report()
        bad = [d for d in report if "no_such_table" in d["sql"]]
        assert bad and bad[0]["errors"] == 1

    def test_shard_heat_and_imbalance(self, configured):
        drive_traffic(configured)
        result = execute_distsql("SHOW SHARD HEAT", configured)
        nodes = [row for row in result.rows if row[0] == "t_user"]
        assert len(nodes) == 2  # hash_mod 2 -> one node per source
        total_reads = sum(row[3] for row in nodes)
        assert total_reads == 20
        # the hot shard (uid=7's node) dominates, so imbalance > 1
        assert nodes[0][3] > nodes[1][3]
        assert nodes[0][-1] > 1.0

    def test_hot_keys_surface_the_skew(self, configured):
        drive_traffic(configured, hot_uid=7, hot_count=12)
        result = execute_distsql("SHOW HOT KEYS FOR t_user", configured)
        assert result.rows, "zipf-style skew produced no hot keys"
        top = result.rows[0]
        assert top[2] == 7  # hottest key is the injected one
        assert top[3] >= 13  # 12 reads + 1 insert, never undercounted
        unfiltered = execute_distsql("SHOW HOT KEYS", configured)
        assert len(unfiltered.rows) >= len(result.rows)

    def test_slo_views(self, configured):
        drive_traffic(configured)
        result = execute_distsql("SHOW SLO", configured)
        by_route = {row[0]: row for row in result.rows}
        assert "standard" in by_route
        assert by_route["standard"][3] > 0  # weighted statements
        alerts = execute_distsql("SHOW SLO ALERTS", configured)
        assert "seq" in alerts.columns or alerts.columns  # view renders

    def test_reset_workload(self, configured):
        drive_traffic(configured)
        execute_distsql("RESET WORKLOAD", configured)
        assert execute_distsql("SHOW STATEMENT DIGESTS", configured).rows == []
        assert execute_distsql("SHOW SHARD HEAT", configured).rows == []
        assert execute_distsql("SHOW HOT KEYS", configured).rows == []

    def test_workload_analytics_toggle(self, configured):
        execute_distsql("SET VARIABLE workload_analytics = off", configured)
        execute_distsql("RESET WORKLOAD", configured)  # drop the fixture's DDL
        drive_traffic(configured)
        result = execute_distsql("SHOW STATEMENT DIGESTS", configured)
        assert result.rows == []
        assert "OFF" in result.message
        execute_distsql("SET VARIABLE workload_analytics = on", configured)
        configured.engine.execute("SELECT v FROM t_user WHERE uid = 1").fetchall()
        assert execute_distsql("SHOW STATEMENT DIGESTS", configured).rows

    def test_show_shard_heat_hint(self, configured):
        with pytest.raises(DistSQLError, match="SHOW SHARD HEAT"):
            execute_distsql("SHOW SHARDING HEAT", configured)


class TestSlowLogDigests:
    def test_entries_carry_digest_and_group(self, configured):
        configured.observability.slow_log.threshold = 0.0  # record everything
        execute_distsql("SET VARIABLE tracing = on", configured)
        configured.engine.execute("SELECT v FROM t_user WHERE uid = 3").fetchall()
        configured.engine.execute("SELECT v FROM t_user WHERE uid = 4").fetchall()
        entries = configured.observability.slow_log.entries()
        assert entries and all(e.digest for e in entries)
        result = execute_distsql("SHOW SLOW QUERIES GROUP BY DIGEST", configured)
        assert result.columns[0] == "digest"
        select_digest, _ = digest_of("SELECT v FROM t_user WHERE uid = ?")
        grouped = {row[0]: row for row in result.rows}
        assert select_digest in grouped
        assert grouped[select_digest][1] == 2  # both literals, one digest

    def test_digest_blank_when_analytics_off(self, configured):
        configured.observability.slow_log.threshold = 0.0
        execute_distsql("SET VARIABLE workload_analytics = off", configured)
        execute_distsql("SET VARIABLE tracing = on", configured)
        configured.engine.execute("SELECT v FROM t_user WHERE uid = 3").fetchall()
        entries = configured.observability.slow_log.entries()
        assert entries and entries[0].digest == ""


# ---------------------------------------------------------------------------
# Idempotent teardown (double UNREGISTER must not raise)
# ---------------------------------------------------------------------------


class TestIdempotentTeardown:
    def test_double_unregister_is_idempotent(self, runtime):
        execute_distsql("REGISTER RESOURCE ds_x", runtime)
        first = execute_distsql("UNREGISTER RESOURCE ds_x", runtime)
        assert "unregistered 1 resource" in first.message
        second = execute_distsql("UNREGISTER RESOURCE ds_x", runtime)
        assert "skipped ds_x" in second.message

    def test_unregister_mixed_known_and_unknown(self, runtime):
        execute_distsql("REGISTER RESOURCE ds_x", runtime)
        result = execute_distsql("UNREGISTER RESOURCE ds_x, ds_ghost", runtime)
        assert "unregistered 1 resource" in result.message
        assert "ds_ghost" in result.message
        assert "ds_x" not in runtime.data_sources

    def test_unregister_in_use_still_raises(self, configured):
        with pytest.raises(DistSQLError, match="referenced by sharding rules"):
            execute_distsql("UNREGISTER RESOURCE ds0", configured)

    def test_runtime_unregister_unknown_is_noop(self, runtime):
        runtime.unregister_resource("never_registered")
        runtime.unregister_resource("never_registered")

    def test_unwatch_pool_is_idempotent(self, runtime):
        runtime.observability.unwatch_pool("ghost")
        runtime.observability.unwatch_pool("ghost")


# ---------------------------------------------------------------------------
# Prometheus exposition conformance
# ---------------------------------------------------------------------------


class TestPrometheusConformance:
    def _bucket_counts(self, text, name):
        pattern = re.compile(rf'{name}_bucket{{le="([^"]+)"}} (\d+)')
        return [(le, int(count)) for le, count in pattern.findall(text)]

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "help", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            hist.observe(value)
        text = registry.render_prometheus()
        buckets = self._bucket_counts(text, "t_seconds")
        assert [le for le, _ in buckets] == ["0.001", "0.01", "0.1", "+Inf"]
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts == [1, 3, 4, 5]

    def test_inf_bucket_equals_count_and_sum_matches(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "help", buckets=(0.001, 0.1))
        values = (0.0002, 0.05, 7.5)
        for value in values:
            hist.observe(value)
        text = registry.render_prometheus()
        inf = self._bucket_counts(text, "t_seconds")[-1]
        assert inf[0] == "+Inf"
        count = int(re.search(r"t_seconds_count (\d+)", text).group(1))
        assert inf[1] == count == len(values)
        total = float(re.search(r"t_seconds_sum (\S+)", text).group(1))
        assert total == pytest.approx(sum(values))

    def test_labeled_histogram_children_render_separately(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "t_seconds", "help", labelnames=("stage",), buckets=(0.01,)
        )
        hist.observe(0.001, stage="parse")
        hist.observe(0.001, stage="route")
        text = registry.render_prometheus()
        assert 't_seconds_bucket{stage="parse",le="0.01"} 1' in text
        assert 't_seconds_bucket{stage="route",le="0.01"} 1' in text

    @pytest.mark.parametrize(
        "raw, escaped",
        [
            ('plain', 'plain'),
            ('quo"te', 'quo\\"te'),
            ('back\\slash', 'back\\\\slash'),
            ('new\nline', 'new\\nline'),
            ('all\\"\n', 'all\\\\\\"\\n'),
        ],
    )
    def test_label_value_escaping(self, raw, escaped):
        assert _escape_label_value(raw) == escaped

    def test_escaped_labels_in_rendered_output(self):
        registry = MetricsRegistry()
        counter = registry.counter("esc_total", "help", labelnames=("path",))
        counter.inc(path='a"b\\c\nd')
        text = registry.render_prometheus()
        assert 'esc_total{path="a\\"b\\\\c\\nd"} 1' in text

    def test_workload_families_exported(self, configured):
        drive_traffic(configured)
        text = configured.observability.registry.render_prometheus()
        assert "# TYPE workload_digests gauge" in text
        assert re.search(r'workload_shard_reads_total{[^}]*table="t_user"', text)
        assert re.search(r'workload_table_imbalance_ratio{table="t_user"}', text)
        assert re.search(r'workload_slo_statements_total{route_type="standard"}', text)
        assert re.search(r'workload_hot_key_count{[^}]*key="7"', text)
