"""Tests for the automatic execution engine (connection modes, θ rule)."""

import threading
import time

import pytest

from repro.engine import ConnectionMode, ExecutionEngine, build_context, rewrite, route
from repro.sql import parse
from repro.storage import DataSource


def units_for(sql, rule, params=()):
    context = build_context(parse(sql), sql, params, rule)
    route_result = route(context, rule)
    return rewrite(context, route_result).execution_units


@pytest.fixture
def wide_fleet():
    """One data source with 10 shard tables of t_big (forces fan-out)."""
    ds = DataSource("ds0", pool_size=16)
    for i in range(10):
        ds.execute(f"CREATE TABLE t_big_{i} (id INT PRIMARY KEY, v INT)")
        ds.execute(f"INSERT INTO t_big_{i} (id, v) VALUES ({i}, {i * 10})")
    return {"ds0": ds}


@pytest.fixture
def wide_rule():
    from repro.sharding import ShardingRule, build_auto_table_rule

    rule = build_auto_table_rule(
        "t_big", ["ds0"], sharding_column="id", algorithm_type="MOD",
        properties={"sharding-count": 10},
    )
    return ShardingRule([rule], default_data_source="ds0")


class TestModeSelection:
    def test_theta_greater_one_forces_connection_strictly(self, wide_fleet, wide_rule):
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=2)
        units = units_for("SELECT * FROM t_big", wide_rule)
        assert len(units) == 10
        result = engine.execute(units, is_query=True)
        assert result.modes["ds0"] is ConnectionMode.CONNECTION_STRICTLY
        rows = [row for shard in result.results for row in shard]
        assert len(rows) == 10
        engine.close()

    def test_theta_one_uses_memory_strictly(self, wide_fleet, wide_rule):
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=10)
        units = units_for("SELECT * FROM t_big", wide_rule)
        result = engine.execute(units, is_query=True)
        assert result.modes["ds0"] is ConnectionMode.MEMORY_STRICTLY
        rows = [row for shard in result.results for row in shard]
        assert len(rows) == 10
        result.release()
        engine.close()

    def test_single_unit_memory_strictly(self, wide_fleet, wide_rule):
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=1)
        units = units_for("SELECT * FROM t_big WHERE id = 3", wide_rule)
        result = engine.execute(units, is_query=True)
        assert result.modes["ds0"] is ConnectionMode.MEMORY_STRICTLY
        result.release()
        engine.close()

    def test_metrics_count_modes(self, wide_fleet, wide_rule):
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=1)
        engine.execute(units_for("SELECT * FROM t_big", wide_rule), is_query=True).release()
        engine.execute(units_for("SELECT * FROM t_big WHERE id = 1", wide_rule), is_query=True).release()
        snap = engine.metrics.snapshot()
        assert snap["connection_strictly"] == 1
        assert snap["memory_strictly"] == 1
        assert snap["statements"] == 11
        engine.close()


class TestConnectionHandling:
    def test_memory_strictly_releases_after_consumption(self, wide_fleet, wide_rule):
        ds = wide_fleet["ds0"]
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=10)
        units = units_for("SELECT * FROM t_big", wide_rule)
        result = engine.execute(units, is_query=True)
        assert ds.pool.in_use == 10  # cursors still streaming
        result.release()
        assert ds.pool.in_use == 0
        engine.close()

    def test_connection_strictly_releases_immediately(self, wide_fleet, wide_rule):
        ds = wide_fleet["ds0"]
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=2)
        result = engine.execute(units_for("SELECT * FROM t_big", wide_rule), is_query=True)
        assert ds.pool.in_use == 0
        engine.close()

    def test_dml_counts_and_releases(self, wide_fleet, wide_rule):
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=4)
        units = units_for(
            "INSERT INTO t_big (id, v) VALUES (100, 1), (101, 1), (102, 1)", wide_rule
        )
        result = engine.execute(units, is_query=False)
        assert result.update_count == 3
        assert wide_fleet["ds0"].pool.in_use == 0
        engine.close()

    def test_pinned_connection_used_for_transactions(self, wide_fleet, wide_rule):
        ds = wide_fleet["ds0"]
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=10)
        pinned = ds.connect()
        pinned.begin()
        units = units_for("INSERT INTO t_big (id, v) VALUES (200, 1)", wide_rule)
        engine.execute(units, is_query=False, held_connections={"ds0": pinned})
        # nothing visible yet from another connection... rollback and check
        pinned.rollback()
        ds.release(pinned)
        assert ds.execute("SELECT COUNT(*) FROM t_big_0 WHERE id = 200") == [(0,)]
        engine.close()

    def test_error_propagates_and_releases(self, wide_fleet, wide_rule):
        engine = ExecutionEngine(wide_fleet, max_connections_per_query=10)
        wide_fleet["ds0"].database.fail_next("statement", times=10)
        with pytest.raises(Exception):
            engine.execute(units_for("SELECT * FROM t_big", wide_rule), is_query=True)
        assert wide_fleet["ds0"].pool.in_use == 0
        engine.close()


class TestParallelism:
    def test_memory_strictly_overlaps_latency(self):
        """10 routed SQLs at 2ms each: parallel must beat serial clearly."""
        from repro.sharding import ShardingRule, build_auto_table_rule
        from repro.storage import LatencyModel

        latency = LatencyModel(base=2e-3, index_io=0, row_cost=0, commit_io=0)
        ds = DataSource("ds0", latency=latency, pool_size=16)
        for i in range(10):
            ds.execute(f"CREATE TABLE t_big_{i} (id INT PRIMARY KEY, v INT)")
        rule = ShardingRule(
            [build_auto_table_rule("t_big", ["ds0"], sharding_column="id",
                                   algorithm_type="MOD", properties={"sharding-count": 10})],
            default_data_source="ds0",
        )
        units = units_for("SELECT * FROM t_big", rule)

        parallel_engine = ExecutionEngine({"ds0": ds}, max_connections_per_query=10)
        start = time.perf_counter()
        parallel_engine.execute(units, is_query=True).release()
        parallel_time = time.perf_counter() - start
        parallel_engine.close()

        serial_engine = ExecutionEngine({"ds0": ds}, max_connections_per_query=1)
        start = time.perf_counter()
        serial_engine.execute(units, is_query=True).release()
        serial_time = time.perf_counter() - start
        serial_engine.close()

        assert parallel_time < serial_time / 2

    def test_atomic_acquisition_avoids_deadlock(self):
        """Two concurrent queries each needing 2 of 2 pool connections must
        both complete (no partial-acquisition deadlock)."""
        ds = DataSource("ds0", pool_size=2)
        for i in range(2):
            ds.execute(f"CREATE TABLE t2_{i} (id INT PRIMARY KEY)")
        from repro.sharding import ShardingRule, build_auto_table_rule

        rule = ShardingRule(
            [build_auto_table_rule("t2", ["ds0"], sharding_column="id",
                                   algorithm_type="MOD", properties={"sharding-count": 2})],
            default_data_source="ds0",
        )
        engine = ExecutionEngine({"ds0": ds}, max_connections_per_query=2)
        units = units_for("SELECT * FROM t2", rule)
        errors = []

        def worker():
            try:
                for _ in range(20):
                    engine.execute(units, is_query=True).release()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert not any(t.is_alive() for t in threads)
        engine.close()
