"""Unit tests for the SQL tokenizer."""

import pytest

from repro.exceptions import SQLParseError
from repro.sql import Token, TokenType, tokenize


def kinds(sql):
    return [(t.type, t.value) for t in tokenize(sql)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        assert kinds("select from") == [
            (TokenType.KEYWORD, "SELECT"),
            (TokenType.KEYWORD, "FROM"),
        ]

    def test_identifier_preserves_case(self):
        assert kinds("t_User") == [(TokenType.IDENTIFIER, "t_User")]

    def test_integer_literal(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]

    def test_float_literal(self):
        assert kinds("3.14") == [(TokenType.NUMBER, "3.14")]

    def test_scientific_notation(self):
        assert kinds("1e5 2.5E-3") == [
            (TokenType.NUMBER, "1e5"),
            (TokenType.NUMBER, "2.5E-3"),
        ]

    def test_leading_dot_number(self):
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]

    def test_placeholder(self):
        assert kinds("?") == [(TokenType.PLACEHOLDER, "?")]

    def test_eof_token_terminates(self):
        tokens = tokenize("SELECT")
        assert tokens[-1].type is TokenType.EOF


class TestStrings:
    def test_simple_string(self):
        assert kinds("'hello'") == [(TokenType.STRING, "hello")]

    def test_escaped_quote(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_unterminated_string_raises(self):
        with pytest.raises(SQLParseError):
            tokenize("'oops")


class TestQuotedIdentifiers:
    def test_backtick(self):
        assert kinds("`order`") == [(TokenType.IDENTIFIER, "order")]

    def test_double_quote(self):
        assert kinds('"select"') == [(TokenType.IDENTIFIER, "select")]

    def test_brackets(self):
        assert kinds("[weird name]") == [(TokenType.IDENTIFIER, "weird name")]

    def test_unterminated_identifier_raises(self):
        with pytest.raises(SQLParseError):
            tokenize("`oops")


class TestOperatorsAndComments:
    def test_multi_char_operators_are_greedy(self):
        assert kinds("<= >= <> != <=>") == [
            (TokenType.OPERATOR, "<="),
            (TokenType.OPERATOR, ">="),
            (TokenType.OPERATOR, "<>"),
            (TokenType.OPERATOR, "!="),
            (TokenType.OPERATOR, "<=>"),
        ]

    def test_line_comment_skipped(self):
        assert kinds("1 -- comment\n2") == [
            (TokenType.NUMBER, "1"),
            (TokenType.NUMBER, "2"),
        ]

    def test_block_comment_skipped(self):
        assert kinds("1 /* x */ 2") == [
            (TokenType.NUMBER, "1"),
            (TokenType.NUMBER, "2"),
        ]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(SQLParseError):
            tokenize("1 /* nope")

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLParseError) as info:
            tokenize("SELECT @")
        assert info.value.position == 7

    def test_positions_recorded(self):
        tokens = tokenize("SELECT a")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_token_helpers(self):
        token = Token(TokenType.KEYWORD, "SELECT", 0)
        assert token.matches("SELECT", "INSERT")
        assert not token.matches("UPDATE")
        punct = Token(TokenType.PUNCTUATION, "(", 0)
        assert punct.is_punct("(")
        op = Token(TokenType.OPERATOR, "=", 0)
        assert op.is_op("=")
