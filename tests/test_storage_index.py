"""Direct unit tests for the index structures."""

import pytest

from repro.exceptions import DuplicateKeyError
from repro.storage.index import HashIndex, SortedIndex


class TestHashIndex:
    def test_insert_and_lookup(self):
        index = HashIndex("i", ["k"])
        index.insert(1, {"k": "a"})
        index.insert(2, {"k": "a"})
        index.insert(3, {"k": "b"})
        assert index.lookup("a") == {1, 2}
        assert index.lookup("b") == {3}
        assert index.lookup("missing") == set()

    def test_unique_rejects_duplicates(self):
        index = HashIndex("u", ["k"], unique=True)
        index.insert(1, {"k": 5})
        with pytest.raises(DuplicateKeyError):
            index.insert(2, {"k": 5})

    def test_remove_cleans_buckets(self):
        index = HashIndex("i", ["k"])
        index.insert(1, {"k": "x"})
        index.remove(1, {"k": "x"})
        assert index.lookup("x") == set()
        assert len(index) == 0

    def test_remove_missing_is_noop(self):
        index = HashIndex("i", ["k"])
        index.remove(9, {"k": "ghost"})

    def test_composite_key(self):
        index = HashIndex("c", ["a", "b"], unique=True)
        index.insert(1, {"a": 1, "b": 2})
        index.insert(2, {"a": 1, "b": 3})
        assert index.lookup((1, 2)) == {1}
        assert index.lookup_values({"a": 1, "b": 3}) == {2}

    def test_unhashable_values_coerced(self):
        index = HashIndex("i", ["k"])
        index.insert(1, {"k": [1, 2]})
        assert index.lookup([1, 2]) == {1}


class TestSortedIndex:
    def make(self):
        index = SortedIndex("s", "k")
        for row_id, value in enumerate([5, 1, 9, 5, 3]):
            index.insert(row_id, {"k": value})
        return index

    def test_full_range(self):
        assert sorted(self.make().range()) == [0, 1, 2, 3, 4]

    def test_closed_range(self):
        index = self.make()
        ids = list(index.range(3, 5))
        assert sorted(ids) == [0, 3, 4]  # values 3, 5, 5

    def test_open_bounds(self):
        index = self.make()
        assert sorted(index.range(3, 5, include_low=False)) == [0, 3]   # (3, 5]
        assert sorted(index.range(3, 5, include_high=False)) == [4]     # [3, 5)

    def test_half_unbounded(self):
        index = self.make()
        assert sorted(index.range(low=5)) == [0, 2, 3]
        assert sorted(index.range(high=3)) == [1, 4]

    def test_remove_specific_row_among_duplicates(self):
        index = self.make()
        index.remove(0, {"k": 5})
        assert sorted(index.range(5, 5)) == [3]
        assert len(index) == 4

    def test_unique_sorted_index(self):
        index = SortedIndex("u", "k", unique=True)
        index.insert(1, {"k": 7})
        with pytest.raises(DuplicateKeyError):
            index.insert(2, {"k": 7})

    def test_nulls_ordered_first(self):
        index = SortedIndex("n", "k")
        index.insert(1, {"k": None})
        index.insert(2, {"k": 0})
        assert list(index.range())[0] == 1
