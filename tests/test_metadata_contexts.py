"""Versioned metadata contexts: copy-on-write snapshots + single writer.

Pins down the tentpole contracts: snapshots are immutable (frozen rule,
read-only source/variable views), mutations are copy-on-write (untouched
fields shared by identity), ``version`` bumps on every mutation while
``plan_epoch`` bumps only on plan-affecting ones, the engine's caches key
by epoch, and every statement observes exactly one snapshot end-to-end
(the ``metadata_version`` trace attribute).
"""

import pytest

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.distsql import execute_distsql
from repro.engine import PlanCache, SQLEngine
from repro.exceptions import DistSQLError, ShardingConfigError
from repro.metadata import KNOWN_VARIABLES, ContextManager
from repro.sharding import ShardingRule
from repro.storage import DataSource


@pytest.fixture
def runtime():
    rt = ShardingRuntime()
    with ShardingDataSource(rt).get_connection() as conn:
        conn.execute("REGISTER RESOURCE ds0, ds1")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=2))"
        )
        conn.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(64))")
    yield rt
    rt.close()


# ---------------------------------------------------------------------------
# Snapshot immutability
# ---------------------------------------------------------------------------


class TestSnapshotImmutability:
    def test_snapshot_views_are_read_only(self, runtime):
        snap = runtime.metadata.current()
        with pytest.raises(TypeError):
            snap.data_sources["rogue"] = DataSource("rogue")
        with pytest.raises(TypeError):
            snap.variables["tracing"] = "ON"

    def test_snapshot_rule_is_frozen(self, runtime):
        snap = runtime.metadata.current()
        assert snap.rule.frozen
        with pytest.raises(ShardingConfigError, match="immutable metadata snapshot"):
            snap.rule.add_broadcast_table("t_dict")
        with pytest.raises(ShardingConfigError, match="immutable metadata snapshot"):
            snap.rule.drop_table_rule("t_user")
        with pytest.raises(ShardingConfigError, match="immutable metadata snapshot"):
            snap.rule.default_data_source = "ds1"

    def test_bootstrap_rule_stays_writable(self):
        # Direct-embedding callers build a rule up front and keep mutating
        # it; only manager-produced copies freeze.
        rule = ShardingRule()
        engine = SQLEngine({"ds0": DataSource("ds0")}, rule)
        assert engine.rule is rule
        assert not engine.rule.frozen
        engine.rule.add_broadcast_table("t_dict")
        engine.close()

    def test_old_snapshot_untouched_by_mutation(self, runtime):
        before = runtime.metadata.current()
        with ShardingDataSource(runtime).get_connection() as conn:
            conn.execute("CREATE BROADCAST TABLE RULE t_dict")
        after = runtime.metadata.current()
        assert not before.rule.is_broadcast("t_dict")
        assert after.rule.is_broadcast("t_dict")
        assert after.version == before.version + 1


# ---------------------------------------------------------------------------
# Copy-on-write
# ---------------------------------------------------------------------------


class TestCopyOnWrite:
    def test_variable_mutation_shares_rule_identity(self, runtime):
        before = runtime.metadata.current()
        runtime.set_variable("tracing", "on")
        after = runtime.metadata.current()
        assert after.rule is before.rule
        assert after.data_sources == before.data_sources
        assert after.variables["tracing"] == "ON"

    def test_rule_mutation_copies_rule(self, runtime):
        before = runtime.metadata.current()
        runtime.metadata.set_default_data_source("ds1")
        after = runtime.metadata.current()
        assert after.rule is not before.rule
        assert after.rule.default_data_source == "ds1"
        assert before.rule.default_data_source == "ds0"

    def test_failed_mutation_leaves_snapshot_untouched(self, runtime):
        before = runtime.metadata.current()
        with pytest.raises(ShardingConfigError):
            runtime.drop_table_rule("t_ghost")
        assert runtime.metadata.current() is before


# ---------------------------------------------------------------------------
# Version / plan-epoch semantics
# ---------------------------------------------------------------------------


class TestVersioning:
    def test_every_mutation_bumps_version(self, runtime):
        v0 = runtime.metadata.version
        runtime.set_variable("tracing", "on")
        runtime.register_resource("ds2")
        runtime.add_broadcast_table("t_dict")
        assert runtime.metadata.version == v0 + 3

    def test_variables_never_bump_plan_epoch(self, runtime):
        snap = runtime.metadata.current()
        runtime.set_variable("tracing", "on")
        runtime.set_variable("slow_query_threshold_ms", 250)
        after = runtime.metadata.current()
        assert after.version == snap.version + 2
        assert after.plan_epoch == snap.plan_epoch

    def test_rule_and_resource_changes_bump_plan_epoch(self, runtime):
        epoch = runtime.metadata.current().plan_epoch
        runtime.register_resource("ds9")
        assert runtime.metadata.current().plan_epoch == epoch + 1
        runtime.unregister_resource("ds9")
        assert runtime.metadata.current().plan_epoch == epoch + 2

    def test_set_variable_keeps_plan_cache_warm(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("SELECT * FROM t_user WHERE uid = ?", (1,))
        conn.execute("SELECT * FROM t_user WHERE uid = ?", (2,))
        assert runtime.engine.plan_cache.hits >= 1
        hits = runtime.engine.plan_cache.hits
        runtime.set_variable("slow_query_threshold_ms", 123)
        conn.execute("SELECT * FROM t_user WHERE uid = ?", (3,))
        assert runtime.engine.plan_cache.hits == hits + 1
        conn.close()

    def test_stale_epoch_store_is_dropped(self, runtime):
        # A statement pinned to a superseded snapshot must not poison the
        # cache with a plan compiled against the old rule.
        cache = runtime.engine.plan_cache
        snap = runtime.metadata.current()
        runtime.metadata.set_default_data_source("ds1")  # epoch += 1
        from repro.engine import compile_plan
        from repro.sql import parse

        sql = "SELECT * FROM t_user WHERE uid = ?"
        stale = compile_plan(sql, parse(sql), snap.rule)
        cache.store(stale, snap.plan_epoch)
        assert cache.peek(sql) is None

    def test_replaced_cache_adopts_current_epoch(self, runtime):
        runtime.engine.plan_cache = PlanCache()
        runtime.engine.plan_cache.epoch = runtime.metadata.current().plan_epoch
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("SELECT * FROM t_user WHERE uid = ?", (1,))
        conn.execute("SELECT * FROM t_user WHERE uid = ?", (2,))
        assert runtime.engine.plan_cache.hits == 1
        conn.close()


# ---------------------------------------------------------------------------
# ContextManager mechanics
# ---------------------------------------------------------------------------


class TestContextManager:
    def test_subscribe_and_unsubscribe(self):
        manager = ContextManager({"ds0": DataSource("ds0")}, ShardingRule())
        swaps = []
        unsubscribe = manager.subscribe(lambda old, new: swaps.append((old.version, new.version)))
        manager.touch("ping")
        assert swaps == [(0, 1)]
        unsubscribe()
        manager.touch("pong")
        assert swaps == [(0, 1)]

    def test_remove_data_source_returns_source_and_reassigns_default(self):
        ds0, ds1 = DataSource("ds0"), DataSource("ds1")
        manager = ContextManager({"ds0": ds0, "ds1": ds1}, ShardingRule(default_data_source="ds0"))
        removed = manager.remove_data_source("ds0")
        assert removed is ds0
        snap = manager.current()
        assert snap.rule.default_data_source == "ds1"
        assert list(snap.data_sources) == ["ds1"]
        assert list(manager.live_sources) == ["ds1"]

    def test_live_sources_shared_by_reference(self):
        sources = {"ds0": DataSource("ds0")}
        manager = ContextManager(sources, ShardingRule())
        manager.add_data_source("ds1", DataSource("ds1"))
        assert set(sources) == {"ds0", "ds1"}

    def test_in_mutation_flag_is_thread_local(self):
        manager = ContextManager({}, ShardingRule())
        seen = []
        manager.subscribe(lambda old, new: seen.append(manager.in_mutation))
        assert not manager.in_mutation
        manager.touch("check")
        assert seen == [True]
        assert not manager.in_mutation


# ---------------------------------------------------------------------------
# Pipeline pinning (trace carries one version per statement)
# ---------------------------------------------------------------------------


class TestStatementPinning:
    def test_trace_spans_carry_single_metadata_version(self, runtime):
        result = runtime.engine.execute(
            "SELECT * FROM t_user WHERE uid = ?", (1,), force_trace=True
        )
        result.fetchall()
        trace = result.trace
        versions = {
            span.attributes["metadata_version"]
            for span in trace.spans
            if "metadata_version" in span.attributes
        }
        assert versions == {runtime.metadata.version}
        assert trace.root.attributes["metadata_version"] == runtime.metadata.version

    def test_plan_hit_path_carries_version_too(self, runtime):
        runtime.engine.execute("SELECT * FROM t_user WHERE uid = ?", (1,)).fetchall()
        result = runtime.engine.execute(
            "SELECT * FROM t_user WHERE uid = ?", (2,), force_trace=True
        )
        result.fetchall()
        names = {span.name for span in result.trace.spans}
        assert "plan_cache_hit" in names
        versions = {
            span.attributes["metadata_version"]
            for span in result.trace.spans
            if "metadata_version" in span.attributes
        }
        assert len(versions) == 1


# ---------------------------------------------------------------------------
# Satellite fixes
# ---------------------------------------------------------------------------


class TestUnregisterResource:
    def test_unregister_closes_pool_and_removes_instruments(self, runtime):
        source = runtime.register_resource("tmp")
        samples = runtime.observability.registry.get("pool_in_use").samples()
        assert any(labels == {"source": "tmp"} for labels, _ in samples)
        exported = runtime.observability.registry.render_prometheus()
        assert 'source="tmp"' in exported

        runtime.unregister_resource("tmp")
        assert not source.pool._idle  # drained by close()
        assert source.pool.wait_observer is None  # detached from metrics
        samples = runtime.observability.registry.get("pool_in_use").samples()
        assert not any(labels == {"source": "tmp"} for labels, _ in samples)
        exported = runtime.observability.registry.render_prometheus()
        assert 'source="tmp"' not in exported

    def test_unregister_unknown_source_is_noop(self, runtime):
        before = runtime.metadata.version
        runtime.unregister_resource("never_registered")
        # the mutation still versions (it's a write attempt), but nothing breaks
        assert runtime.metadata.version == before + 1

    def test_collector_can_reregister_after_unregister(self, runtime):
        source = runtime.register_resource("tmp")
        runtime.unregister_resource("tmp")
        runtime.register_resource("tmp")
        exported = runtime.observability.registry.render_prometheus()
        assert 'source="tmp"' in exported
        runtime.unregister_resource("tmp")


class TestSetVariableValidation:
    def test_unknown_variable_raises(self, runtime):
        with pytest.raises(DistSQLError, match="unknown variable"):
            runtime.set_variable("not_a_variable", 1)

    def test_unknown_variable_raises_through_sql_adaptor(self, runtime):
        with ShardingDataSource(runtime).get_connection() as conn:
            with pytest.raises(DistSQLError, match="unknown variable"):
                conn.execute("SET VARIABLE definitely_bogus = 1")

    def test_known_variables_round_trip(self, runtime):
        runtime.set_variable("tracing", "on")
        assert runtime.variables["tracing"] == "ON"
        assert runtime.observability.tracer.enabled
        runtime.set_variable("plan_cache", "off")
        assert not runtime.engine.plan_cache.enabled


class TestGovernorPropReplay:
    def test_restart_replays_all_props(self, runtime):
        runtime.set_variable("tracing", "on")
        runtime.set_variable("slow_query_threshold_ms", 42.0)
        runtime.set_variable("plan_cache", "off")
        runtime.set_variable("max_connections_per_query", 3)

        rejoined = ShardingRuntime(config_center=runtime.config_center)
        rejoined.load_rules_from_governor()
        assert rejoined.variables["tracing"] == "ON"
        assert rejoined.observability.tracer.enabled
        assert rejoined.variables["slow_query_threshold_ms"] == 42.0
        assert rejoined.observability.slow_log.threshold == pytest.approx(0.042)
        assert rejoined.variables["plan_cache"] == "OFF"
        assert not rejoined.engine.plan_cache.enabled
        assert rejoined.engine.executor.max_connections_per_query == 3
        rejoined.close()

    def test_replay_does_not_republish(self, runtime):
        runtime.set_variable("tracing", "on")
        version_node = runtime.config_center.metadata_version()
        rejoined = ShardingRuntime(config_center=runtime.config_center)
        rejoined.load_rules_from_governor()
        # replay applies locally but must not churn the shared prop nodes
        assert runtime.config_center.get_prop("tracing") == "ON"
        rejoined.close()
        assert KNOWN_VARIABLES  # sanity: the shared vocabulary is non-empty
        assert version_node is not None


class TestShowMetadata:
    def test_show_metadata(self, runtime):
        result = execute_distsql("SHOW METADATA", runtime)
        fields = dict(result.rows)
        assert fields["version"] == runtime.metadata.version
        assert fields["plan_epoch"] == runtime.metadata.current().plan_epoch
        assert "ds0" in fields["data_sources"]
        assert "t_user" in fields["sharded_tables"]
        assert fields["rule_frozen"] is True
        assert f"v{runtime.metadata.version}" in result.message
