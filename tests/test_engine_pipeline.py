"""Integration tests for the full SQL engine pipeline (SQLEngine)."""

import pytest

from repro.engine import Feature, SQLEngine


class TestQueries:
    def test_point_select(self, seeded_engine):
        result = seeded_engine.execute("SELECT name FROM t_user WHERE uid = 3")
        assert result.fetchall() == [("carol",)]
        assert result.unit_count == 1

    def test_cross_shard_order_by(self, seeded_engine):
        result = seeded_engine.execute("SELECT uid, age FROM t_user ORDER BY age")
        assert result.fetchall() == [(2, 25), (4, 28), (1, 30), (3, 35)]
        assert result.merger_kind == "order-by-stream"

    def test_cross_shard_aggregation(self, seeded_engine):
        result = seeded_engine.execute("SELECT COUNT(*), SUM(age), AVG(age) FROM t_user")
        assert result.fetchall() == [(4, 118, 29.5)]

    def test_cross_shard_group_by(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT uid, COUNT(*) AS c, SUM(amount) FROM t_order GROUP BY uid"
        )
        assert sorted(result.fetchall()) == [(1, 2, 7.0), (2, 1, 7.5), (3, 1, 3.0)]

    def test_derived_columns_hidden_from_output(self, seeded_engine):
        result = seeded_engine.execute("SELECT name FROM t_user ORDER BY age DESC")
        assert result.columns == ["name"]
        assert result.fetchall() == [("carol",), ("alice",), ("dave",), ("bob",)]

    def test_cross_shard_pagination(self, seeded_engine):
        result = seeded_engine.execute("SELECT uid FROM t_user ORDER BY uid LIMIT 2 OFFSET 1")
        assert result.fetchall() == [(2,), (3,)]

    def test_binding_join(self, seeded_engine):
        result = seeded_engine.execute(
            "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid "
            "ORDER BY o.amount DESC"
        )
        assert result.fetchall() == [("bob", 7.5), ("alice", 5.0), ("carol", 3.0), ("alice", 2.0)]
        assert result.route_type == "standard"

    def test_distinct_across_shards(self, seeded_engine):
        seeded_engine.execute("INSERT INTO t_user (uid, name, age) VALUES (5, 'eve', 25)")
        result = seeded_engine.execute("SELECT DISTINCT age FROM t_user ORDER BY age")
        assert result.fetchall() == [(25,), (28,), (30,), (35,)]

    def test_avg_correct_with_uneven_shards(self, seeded_engine):
        # shard ds0 has ages {25, 28}; ds1 {30, 35}: global avg = 29.5
        result = seeded_engine.execute("SELECT AVG(age) FROM t_user")
        assert result.fetchall() == [(29.5,)]

    def test_empty_result(self, seeded_engine):
        result = seeded_engine.execute("SELECT * FROM t_user WHERE uid = 404")
        assert result.fetchall() == []


class TestWrites:
    def test_update_routes_narrowly(self, seeded_engine):
        result = seeded_engine.execute("UPDATE t_user SET age = 26 WHERE uid = 2")
        assert result.update_count == 1
        assert result.unit_count == 1

    def test_cross_shard_update(self, seeded_engine):
        result = seeded_engine.execute("UPDATE t_user SET age = age + 1")
        assert result.update_count == 4
        assert result.unit_count == 2

    def test_delete(self, seeded_engine):
        result = seeded_engine.execute("DELETE FROM t_order WHERE uid = 1")
        assert result.update_count == 2

    def test_broadcast_dml_on_dict_table(self, seeded_engine, fleet):
        result = seeded_engine.execute("INSERT INTO t_dict (k, v) VALUES ('x', 'y')")
        for ds in fleet.values():
            assert ds.execute("SELECT COUNT(*) FROM t_dict") == [(1,)]

    def test_ddl_fans_out(self, seeded_engine, fleet):
        seeded_engine.execute("TRUNCATE TABLE t_user")
        assert fleet["ds0"].execute("SELECT COUNT(*) FROM t_user_h0") == [(0,)]
        assert fleet["ds1"].execute("SELECT COUNT(*) FROM t_user_h1") == [(0,)]


class TestFeatureHooks:
    def test_feature_sees_all_stages(self, seeded_engine):
        events = []

        class Spy(Feature):
            name = "spy"

            def on_context(self, context):
                events.append("context")

            def on_route(self, route_result, context):
                events.append(f"route:{len(route_result.units)}")

            def on_units(self, units, context):
                events.append(f"units:{len(units)}")

            def on_result(self, result, context):
                events.append("result")

        seeded_engine.add_feature(Spy())
        seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1")
        assert events == ["context", "route:1", "units:1", "result"]

    def test_remove_feature(self, seeded_engine):
        class Marker(Feature):
            name = "marker"

        seeded_engine.add_feature(Marker())
        seeded_engine.remove_feature("marker")
        assert all(f.name != "marker" for f in seeded_engine.features)


class TestDialects:
    def test_rewritten_sql_respects_target_dialect(self, fleet, paper_rule):
        from repro.sql.dialects import MYSQL

        fleet["ds0"].dialect = MYSQL
        fleet["ds1"].dialect = MYSQL
        engine = SQLEngine(fleet, paper_rule, max_connections_per_query=2)
        result = engine.execute("SELECT * FROM t_user ORDER BY uid LIMIT 10 OFFSET 2")
        # MySQL limit style "LIMIT offset, count" would appear only if the
        # offset survived; pagination revision folds it, so LIMIT 12.
        assert all("LIMIT 12" in sql for sql in result.sqls)
        engine.close()


class TestFederation:
    """Cross-source joins with no co-located shards fall back to the
    federation executor (upstream ShardingSphere 5.x behaviour)."""

    @pytest.fixture
    def split_fleet(self):
        from repro.sharding import make_vertical_sharding
        from repro.storage import DataSource

        sources = {"ds_a": DataSource("ds_a"), "ds_b": DataSource("ds_b")}
        sources["ds_a"].execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(32))")
        sources["ds_b"].execute("CREATE TABLE t_order (oid INT PRIMARY KEY, uid INT, amount FLOAT)")
        sources["ds_a"].execute(
            "INSERT INTO t_user (uid, name) VALUES (1, 'ann'), (2, 'bo'), (3, 'che')"
        )
        sources["ds_b"].execute(
            "INSERT INTO t_order (oid, uid, amount) VALUES "
            "(10, 1, 4.0), (11, 2, 6.0), (12, 1, 1.5)"
        )
        rule = make_vertical_sharding({"t_user": "ds_a", "t_order": "ds_b"})
        engine = SQLEngine(sources, rule)
        yield engine
        engine.close()

    def test_cross_source_join(self, split_fleet):
        result = split_fleet.execute(
            "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid "
            "ORDER BY o.amount DESC"
        )
        assert result.route_type == "federation"
        assert result.fetchall() == [("bo", 6.0), ("ann", 4.0), ("ann", 1.5)]

    def test_cross_source_aggregate_join(self, split_fleet):
        result = split_fleet.execute(
            "SELECT u.name, SUM(o.amount) AS total FROM t_user u "
            "JOIN t_order o ON u.uid = o.uid GROUP BY u.name ORDER BY total DESC"
        )
        assert result.fetchall() == [("bo", 6.0), ("ann", 5.5)]

    def test_predicate_pushdown_limits_fetch(self, split_fleet):
        result = split_fleet.execute(
            "SELECT u.name, o.oid FROM t_user u JOIN t_order o ON u.uid = o.uid "
            "WHERE u.uid = 1 AND o.amount > 2 ORDER BY o.oid"
        )
        assert result.fetchall() == [("ann", 10)]

    def test_left_join_federated(self, split_fleet):
        result = split_fleet.execute(
            "SELECT u.name, o.oid FROM t_user u LEFT JOIN t_order o ON u.uid = o.uid "
            "WHERE o.oid IS NULL"
        )
        assert result.fetchall() == [("che", None)]

    def test_federation_can_be_disabled(self):
        from repro.exceptions import RouteError
        from repro.sharding import make_vertical_sharding
        from repro.storage import DataSource

        sources = {"a": DataSource("a"), "b": DataSource("b")}
        sources["a"].execute("CREATE TABLE x (k INT PRIMARY KEY)")
        sources["b"].execute("CREATE TABLE y (k INT PRIMARY KEY)")
        rule = make_vertical_sharding({"x": "a", "y": "b"})
        engine = SQLEngine(sources, rule, enable_federation=False)
        with pytest.raises(RouteError):
            engine.execute("SELECT * FROM x JOIN y ON x.k = y.k")
        engine.close()
