"""Live cluster propagation: two runtimes converging through one Governor.

Section V-A's cluster mode: every member shares one ConfigCenter; rule
and prop changes made on any member are applied by the others without a
restart. These tests run two :class:`ShardingRuntime` instances against
the same (in-process) Governor and assert convergence, idempotence, and
self-event suppression.
"""

import pytest

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.exceptions import GovernanceError


@pytest.fixture
def cluster():
    """Runtime A (writer) and runtime B (cluster member) on one Governor."""
    a = ShardingRuntime()
    a_conn = ShardingDataSource(a).get_connection()
    a_conn.execute("REGISTER RESOURCE ds0, ds1")

    b = ShardingRuntime(config_center=a.config_center)
    b_conn = ShardingDataSource(b).get_connection()
    b_conn.execute("REGISTER RESOURCE ds0, ds1")
    b.enable_cluster_mode()

    yield a, b, a_conn, b_conn

    a_conn.close()
    b_conn.close()
    a.close()
    b.close()


CREATE_T_USER = (
    "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
    "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=2))"
)


class TestRulePropagation:
    def test_create_on_a_applies_on_b(self, cluster):
        a, b, a_conn, _ = cluster
        assert not b.rule.is_sharded("t_user")
        a_conn.execute(CREATE_T_USER)
        assert b.rule.is_sharded("t_user")
        # B routes the propagated rule correctly: uid=3 -> shard 1 on ds1
        targets = dict(b.preview("SELECT * FROM t_user WHERE uid = 3"))
        assert list(targets) == ["ds1"]
        assert "t_user_1" in targets["ds1"]

    def test_propagation_bumps_b_version_once(self, cluster):
        a, b, a_conn, _ = cluster
        before = b.metadata.version
        a_conn.execute(CREATE_T_USER)
        assert b.metadata.version == before + 1
        snap = b.metadata.current()
        assert snap.reason == "sharding rule t_user"

    def test_alter_on_a_reshapes_b(self, cluster):
        a, b, a_conn, _ = cluster
        a_conn.execute(CREATE_T_USER)
        assert len(b.rule.table_rule("t_user").data_nodes) == 2
        a_conn.execute(
            "ALTER SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=4))"
        )
        assert len(b.rule.table_rule("t_user").data_nodes) == 4

    def test_drop_on_a_removes_from_b(self, cluster):
        a, b, a_conn, _ = cluster
        a_conn.execute(CREATE_T_USER)
        assert b.rule.is_sharded("t_user")
        a_conn.execute("DROP SHARDING TABLE RULE t_user")
        assert not b.rule.is_sharded("t_user")
        assert not a.rule.is_sharded("t_user")

    def test_broadcast_and_binding_propagate(self, cluster):
        a, b, a_conn, _ = cluster
        a_conn.execute(CREATE_T_USER)
        a_conn.execute(
            "CREATE SHARDING TABLE RULE t_order (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=2))"
        )
        a_conn.execute("CREATE BROADCAST TABLE RULE t_dict")
        a_conn.execute("CREATE SHARDING BINDING TABLE RULES (t_user, t_order)")
        assert b.rule.is_broadcast("t_dict")
        assert b.rule.are_binding(["t_user", "t_order"])

    def test_rwsplit_propagates(self, cluster):
        a, b, a_conn, _ = cluster
        a_conn.execute(
            "CREATE READWRITE_SPLITTING RULE wr (PRIMARY=ds0, REPLICAS(ds1))"
        )
        feature = b._rwsplit_feature
        assert feature is not None
        group = feature.groups["ds0"]
        assert group.primary == "ds0"
        assert list(group.replicas) == ["ds1"]

    def test_peer_rule_referencing_unknown_resource_autoregisters(self, cluster):
        a, b, a_conn, _ = cluster
        a_conn.execute("REGISTER RESOURCE ds9")
        a_conn.execute(
            "CREATE SHARDING TABLE RULE t_wide (RESOURCES(ds0, ds1, ds9), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=3))"
        )
        # B never registered ds9; convergence pulls it in
        assert "ds9" in b.data_sources
        assert b.rule.is_sharded("t_wide")


class TestPropPropagation:
    def test_set_variable_on_a_applies_on_b(self, cluster):
        a, b, a_conn, _ = cluster
        a_conn.execute("SET VARIABLE tracing = on")
        assert b.variables["tracing"] == "ON"
        assert b.observability.tracer.enabled
        a_conn.execute("SET VARIABLE slow_query_threshold_ms = 77")
        assert b.variables["slow_query_threshold_ms"] == 77.0

    def test_prop_propagation_does_not_echo(self, cluster):
        a, b, a_conn, _ = cluster
        a.enable_cluster_mode()
        before_a, before_b = a.metadata.version, b.metadata.version
        a_conn.execute("SET VARIABLE tracing = on")
        # one mutation on each side — A applies locally, B converges;
        # neither replays the event back at the writer
        assert a.metadata.version == before_a + 1
        assert b.metadata.version == before_b + 1


class TestSelfEventSuppression:
    def test_writer_with_cluster_mode_does_not_echo_own_rule(self, cluster):
        a, b, a_conn, _ = cluster
        a.enable_cluster_mode()
        before = a.metadata.version
        a_conn.execute(CREATE_T_USER)
        assert a.metadata.version == before + 1  # apply once, no echo
        assert b.rule.is_sharded("t_user")

    def test_bidirectional_writes_converge(self, cluster):
        a, b, a_conn, b_conn = cluster
        a.enable_cluster_mode()
        a_conn.execute(CREATE_T_USER)
        b_conn.execute(
            "CREATE SHARDING TABLE RULE t_order (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=2))"
        )
        # both members hold both rules
        for runtime in (a, b):
            assert runtime.rule.is_sharded("t_user")
            assert runtime.rule.is_sharded("t_order")

    def test_peer_write_does_not_reapply_own_rules(self, cluster):
        a, b, a_conn, b_conn = cluster
        a.enable_cluster_mode()
        a_conn.execute(CREATE_T_USER)
        version_a = a.metadata.version
        # B's write fires A's sharding watcher; reconcile must not treat
        # A's own (already applied) t_user as fresh and re-apply it
        b_conn.execute(
            "CREATE SHARDING TABLE RULE t_order (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=2))"
        )
        assert a.metadata.version == version_a + 1  # exactly the t_order apply


class TestClusterLifecycle:
    def test_enable_twice_raises(self, cluster):
        _, b, _, _ = cluster
        with pytest.raises(GovernanceError, match="already enabled"):
            b.enable_cluster_mode()

    def test_instances_visible_while_enabled(self, cluster):
        a, b, _, _ = cluster
        assert b.instance_id in a.config_center.online_instances()
        b.disable_cluster_mode()
        assert b.instance_id not in a.config_center.online_instances()

    def test_disable_stops_propagation(self, cluster):
        a, b, a_conn, _ = cluster
        b.disable_cluster_mode()
        a_conn.execute(CREATE_T_USER)
        assert not b.rule.is_sharded("t_user")
        # rejoining reconverges via restart recovery
        b.enable_cluster_mode()
        applied = b.load_rules_from_governor()
        assert applied >= 1
        assert b.rule.is_sharded("t_user")

    def test_close_disables_cluster_mode(self):
        a = ShardingRuntime()
        b = ShardingRuntime(config_center=a.config_center)
        b.enable_cluster_mode()
        b.close()
        assert a.config_center.online_instances() == []
        a.close()
