"""Unit + property tests for sharding algorithms, keygen and the registry."""

import datetime

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ShardingConfigError, UnknownAlgorithmError
from repro.sharding import (
    HashModShardingAlgorithm,
    ShardingAlgorithm,
    SnowflakeKeyGenerator,
    available_algorithms,
    create_algorithm,
    create_key_generator,
    evaluate_inline,
    register_algorithm,
)

TARGETS4 = ["t_0", "t_1", "t_2", "t_3"]


class TestMod:
    def test_routes_by_modulo(self):
        algo = create_algorithm("MOD", {"sharding-count": 4})
        assert algo.do_sharding(TARGETS4, 6) == "t_2"
        assert algo.do_sharding(TARGETS4, 0) == "t_0"

    def test_requires_count(self):
        with pytest.raises(ShardingConfigError):
            create_algorithm("MOD", {})

    def test_range_narrow_prunes(self):
        algo = create_algorithm("MOD", {"sharding-count": 4})
        assert sorted(algo.do_range_sharding(TARGETS4, 5, 6)) == ["t_1", "t_2"]

    def test_range_wide_returns_all(self):
        algo = create_algorithm("MOD", {"sharding-count": 4})
        assert sorted(algo.do_range_sharding(TARGETS4, 0, 100)) == TARGETS4

    def test_unbounded_range_returns_all(self):
        algo = create_algorithm("MOD", {"sharding-count": 4})
        assert sorted(algo.do_range_sharding(TARGETS4, None, 10)) == TARGETS4


class TestHashMod:
    def test_deterministic_for_strings(self):
        algo = create_algorithm("HASH_MOD", {"sharding-count": 4})
        a = algo.do_sharding(TARGETS4, "user-123")
        b = algo.do_sharding(TARGETS4, "user-123")
        assert a == b

    def test_int_hashes_to_itself(self):
        algo = create_algorithm("HASH_MOD", {"sharding-count": 4})
        assert algo.do_sharding(TARGETS4, 7) == "t_3"

    def test_stable_hash_nonnegative(self):
        assert HashModShardingAlgorithm.stable_hash(-5) >= 0
        assert HashModShardingAlgorithm.stable_hash("x") >= 0

    @settings(max_examples=50, deadline=None)
    @given(value=st.one_of(st.integers(), st.text(max_size=20)))
    def test_always_lands_on_a_target(self, value):
        algo = create_algorithm("HASH_MOD", {"sharding-count": 4})
        assert algo.do_sharding(TARGETS4, value) in TARGETS4


class TestVolumeRange:
    def make(self):
        return create_algorithm(
            "VOLUME_RANGE",
            {"range-lower": 0, "range-upper": 100, "sharding-volume": 25},
        )

    def test_partitions(self):
        algo = self.make()
        targets = [f"t_{i}" for i in range(6)]
        assert algo.do_sharding(targets, -5) == "t_0"  # below lower
        assert algo.do_sharding(targets, 0) == "t_1"
        assert algo.do_sharding(targets, 99) == "t_4"
        assert algo.do_sharding(targets, 150) == "t_5"  # above upper

    def test_range_sharding_prunes(self):
        algo = self.make()
        targets = [f"t_{i}" for i in range(6)]
        assert algo.do_range_sharding(targets, 10, 30) == ["t_1", "t_2"]

    def test_bad_config(self):
        with pytest.raises(ShardingConfigError):
            create_algorithm("VOLUME_RANGE", {"range-lower": 10, "range-upper": 5, "sharding-volume": 1})


class TestBoundaryRange:
    def test_boundaries(self):
        algo = create_algorithm("BOUNDARY_RANGE", {"sharding-ranges": "10,20,30"})
        assert algo.do_sharding(TARGETS4, 5) == "t_0"
        assert algo.do_sharding(TARGETS4, 10) == "t_1"
        assert algo.do_sharding(TARGETS4, 25) == "t_2"
        assert algo.do_sharding(TARGETS4, 99) == "t_3"

    def test_range_prunes(self):
        algo = create_algorithm("BOUNDARY_RANGE", {"sharding-ranges": "10,20,30"})
        assert algo.do_range_sharding(TARGETS4, 12, 22) == ["t_1", "t_2"]

    def test_empty_ranges_rejected(self):
        with pytest.raises(ShardingConfigError):
            create_algorithm("BOUNDARY_RANGE", {"sharding-ranges": ""})


class TestAutoInterval:
    def make(self):
        return create_algorithm(
            "AUTO_INTERVAL",
            {
                "datetime-lower": "2021-01-01 00:00:00",
                "datetime-upper": "2021-01-05 00:00:00",
                "sharding-seconds": 86400,
            },
        )

    def test_slices(self):
        algo = self.make()
        targets = [f"t_{i}" for i in range(7)]
        assert algo.do_sharding(targets, "2020-12-25") == "t_0"
        assert algo.do_sharding(targets, "2021-01-01 10:00:00") == "t_1"
        assert algo.do_sharding(targets, "2021-01-03 10:00:00") == "t_3"

    def test_range(self):
        algo = self.make()
        targets = [f"t_{i}" for i in range(7)]
        routed = algo.do_range_sharding(targets, "2021-01-01 01:00:00", "2021-01-02 01:00:00")
        assert routed == ["t_1", "t_2"]


class TestInterval:
    def test_monthly_suffix(self):
        algo = create_algorithm("INTERVAL", {"datetime-interval-unit": "MONTHS"})
        targets = ["t_log_202101", "t_log_202102", "t_log_202103"]
        assert algo.do_sharding(targets, "2021-02-14") == "t_log_202102"

    def test_missing_suffix_raises(self):
        algo = create_algorithm("INTERVAL", {"datetime-interval-unit": "MONTHS"})
        with pytest.raises(ShardingConfigError):
            algo.do_sharding(["t_log_202101"], "2021-06-01")

    def test_range_overlap(self):
        algo = create_algorithm("INTERVAL", {"datetime-interval-unit": "MONTHS"})
        targets = ["t_202101", "t_202102", "t_202103"]
        routed = algo.do_range_sharding(targets, "2021-01-20", "2021-02-10")
        assert routed == ["t_202101", "t_202102"]


class TestInline:
    def test_evaluate_inline(self):
        assert evaluate_inline("t_user_${uid % 2}", {"uid": 7}) == "t_user_1"

    def test_inline_algorithm(self):
        algo = create_algorithm(
            "INLINE", {"algorithm-expression": "t_${uid % 4}", "sharding-column": "uid"}
        )
        assert algo.do_sharding(TARGETS4, 6) == "t_2"

    def test_inline_requires_expression(self):
        with pytest.raises(ShardingConfigError):
            create_algorithm("INLINE", {"algorithm-expression": "static"})

    def test_inline_unknown_target_raises(self):
        algo = create_algorithm(
            "INLINE", {"algorithm-expression": "t_${uid % 9}", "sharding-column": "uid"}
        )
        with pytest.raises(ShardingConfigError):
            algo.do_sharding(TARGETS4, 8)

    def test_complex_inline(self):
        algo = create_algorithm(
            "COMPLEX_INLINE",
            {
                "sharding-columns": "uid, region",
                "algorithm-expression": "t_${(uid + len(region)) % 4}",
            },
        )
        assert algo.do_sharding(TARGETS4, {"uid": 1, "region": "bj"}) == "t_3"

    def test_hint_inline(self):
        algo = create_algorithm("HINT_INLINE", {"algorithm-expression": "t_${value % 4}"})
        assert algo.do_sharding(TARGETS4, 5) == "t_1"

    def test_inline_rejects_builtins_access(self):
        with pytest.raises(ShardingConfigError):
            evaluate_inline("${open('/etc/passwd')}", {})


class TestClassBasedAndRegistry:
    def test_class_based(self):
        algo = create_algorithm(
            "CLASS_BASED", {"function": lambda targets, value: sorted(targets)[0]}
        )
        assert algo.do_sharding(TARGETS4, 123) == "t_0"

    def test_class_based_requires_callable(self):
        with pytest.raises(ShardingConfigError):
            create_algorithm("CLASS_BASED", {"function": "nope"})

    def test_ten_presets_registered(self):
        presets = {
            "MOD", "HASH_MOD", "VOLUME_RANGE", "BOUNDARY_RANGE", "AUTO_INTERVAL",
            "INTERVAL", "INLINE", "COMPLEX_INLINE", "HINT_INLINE", "CLASS_BASED",
        }
        assert presets <= set(available_algorithms())
        assert len(presets) == 10

    def test_unknown_type_raises(self):
        with pytest.raises(UnknownAlgorithmError):
            create_algorithm("NOPE")

    def test_user_extension_via_spi(self):
        @register_algorithm
        class FirstTargetAlgorithm(ShardingAlgorithm):
            type_name = "TEST_FIRST"

            def do_sharding(self, targets, value):
                return sorted(targets)[0]

        algo = create_algorithm("test_first")
        assert algo.do_sharding(TARGETS4, 99) == "t_0"


class TestKeyGenerators:
    def test_snowflake_monotonic_and_unique(self):
        gen = SnowflakeKeyGenerator({"worker-id": 3})
        keys = [gen.next_key() for _ in range(500)]
        assert keys == sorted(keys)
        assert len(set(keys)) == 500

    def test_snowflake_embeds_timestamp(self):
        gen = SnowflakeKeyGenerator()
        key = gen.next_key()
        ts = SnowflakeKeyGenerator.extract_timestamp_ms(key) / 1000
        now = datetime.datetime.now().timestamp()
        assert abs(now - ts) < 60

    def test_snowflake_worker_id_validated(self):
        with pytest.raises(ShardingConfigError):
            SnowflakeKeyGenerator({"worker-id": 99999})

    def test_uuid_generator(self):
        gen = create_key_generator("UUID")
        key = gen.next_key()
        assert len(key) == 32
        assert key != gen.next_key()

    def test_unknown_generator(self):
        with pytest.raises(UnknownAlgorithmError):
            create_key_generator("WHAT")


class TestRangePointConsistency:
    """Invariant: every point in [low, high] must route to a target that
    the range routing for [low, high] also returned — otherwise range
    queries would silently miss rows."""

    @settings(max_examples=60, deadline=None)
    @given(low=st.integers(-500, 500), span=st.integers(0, 200))
    def test_mod(self, low, span):
        algo = create_algorithm("MOD", {"sharding-count": 4})
        routed = set(algo.do_range_sharding(TARGETS4, low, low + span))
        for value in range(low, low + span + 1):
            assert algo.do_sharding(TARGETS4, value) in routed

    @settings(max_examples=60, deadline=None)
    @given(low=st.integers(0, 500), span=st.integers(0, 100))
    def test_hash_mod(self, low, span):
        algo = create_algorithm("HASH_MOD", {"sharding-count": 4})
        routed = set(algo.do_range_sharding(TARGETS4, low, low + span))
        for value in range(low, low + span + 1):
            assert algo.do_sharding(TARGETS4, value) in routed

    @settings(max_examples=60, deadline=None)
    @given(low=st.integers(-50, 150), span=st.integers(0, 80))
    def test_volume_range(self, low, span):
        algo = create_algorithm(
            "VOLUME_RANGE",
            {"range-lower": 0, "range-upper": 100, "sharding-volume": 25},
        )
        targets = [f"t_{i}" for i in range(6)]
        routed = set(algo.do_range_sharding(targets, low, low + span))
        for value in range(low, low + span + 1):
            assert algo.do_sharding(targets, value) in routed

    @settings(max_examples=60, deadline=None)
    @given(low=st.integers(-50, 150), span=st.integers(0, 80))
    def test_boundary_range(self, low, span):
        algo = create_algorithm("BOUNDARY_RANGE", {"sharding-ranges": "10,20,30"})
        routed = set(algo.do_range_sharding(TARGETS4, low, low + span))
        for value in range(low, low + span + 1):
            assert algo.do_sharding(TARGETS4, value) in routed

    @settings(max_examples=40, deadline=None)
    @given(low=st.integers(0, 9999), span=st.integers(0, 2000))
    def test_range_grid_level(self, low, span):
        from repro.baselines.topology import RangeLevelAlgorithm

        targets = [f"t_{i}" for i in range(10)]
        algo = RangeLevelAlgorithm(block=250, count=10, modulo=2500)
        routed = set(algo.do_range_sharding(targets, low, low + span))
        for value in range(low, low + span + 1, max(1, span // 50)):
            assert algo.do_sharding(targets, value) in routed
