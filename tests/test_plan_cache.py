"""Prepared-statement plan cache: compilation, hits, invalidation, DistSQL.

The cache compiles one immutable plan per SQL text; hits skip
parse/context/route/rewrite. These tests pin down the cacheability
rules, the counter accounting, every invalidation trigger and the
feature interaction contract (``plan_cache_safe``).
"""

import pytest

from repro.adaptors import PreparedStatement, ShardingDataSource, ShardingRuntime
from repro.engine import CompiledPlan, ParamRef, PlanCache, compile_plan
from repro.features import (
    EncryptColumn,
    EncryptFeature,
    EncryptRule,
    ReadWriteGroup,
    ReadWriteSplittingFeature,
    XorStreamEncryptor,
)
from repro.sharding import ShardingRule
from repro.sql import parse
from repro.storage import DataSource


def _compile(sql: str, rule) -> CompiledPlan:
    return compile_plan(sql, parse(sql), rule)


# ---------------------------------------------------------------------------
# Compilation / cacheability rules
# ---------------------------------------------------------------------------


class TestCompile:
    def test_point_select_compiles(self, paper_rule):
        plan = _compile("SELECT name FROM t_user WHERE uid = ?", paper_rule)
        assert plan.cacheable
        assert plan.param_count == 1
        assert plan.single_table == "t_user"
        assert plan.fingerprint
        template = plan.condition_template["t_user"]["uid"]
        assert template.values == [ParamRef(0)]

    def test_insert_bypasses(self, paper_rule):
        plan = _compile("INSERT INTO t_user (uid, name, age) VALUES (?, ?, ?)", paper_rule)
        assert not plan.cacheable
        assert "INSERT" in plan.reason

    def test_ddl_bypasses(self, paper_rule):
        plan = _compile("CREATE TABLE t_new (id INT PRIMARY KEY)", paper_rule)
        assert not plan.cacheable
        assert "DDL" in plan.reason

    def test_limit_placeholder_bypasses(self, paper_rule):
        plan = _compile("SELECT * FROM t_user ORDER BY uid LIMIT ?", paper_rule)
        assert not plan.cacheable
        assert "LIMIT" in plan.reason

    def test_literal_limit_compiles(self, paper_rule):
        plan = _compile("SELECT * FROM t_user ORDER BY uid LIMIT 5", paper_rule)
        assert plan.cacheable

    def test_intersected_sharding_conditions_bypass(self, paper_rule):
        plan = _compile(
            "SELECT * FROM t_user WHERE uid = ? AND uid = ?", paper_rule
        )
        assert not plan.cacheable
        assert "intersected" in plan.reason

    def test_bind_conditions_substitutes_params(self, paper_rule):
        plan = _compile("SELECT name FROM t_user WHERE uid = ?", paper_rule)
        bound = plan.bind_conditions((7,))
        assert bound["t_user"]["uid"].values == [7]
        # the template itself must stay parameterized
        assert plan.condition_template["t_user"]["uid"].values == [ParamRef(0)]


# ---------------------------------------------------------------------------
# Hit/miss accounting and correctness on the hot path
# ---------------------------------------------------------------------------


class TestHitPath:
    def test_miss_then_hit(self, seeded_engine):
        # fresh cache: the fixture's seeding INSERTs already count misses
        seeded_engine.plan_cache = cache = PlanCache()
        sql = "SELECT name FROM t_user WHERE uid = ?"
        assert seeded_engine.execute(sql, (1,)).fetchall() == [("alice",)]
        assert (cache.misses, cache.hits) == (1, 0)
        assert seeded_engine.execute(sql, (2,)).fetchall() == [("bob",)]
        assert (cache.misses, cache.hits) == (1, 1)
        assert cache.peek(sql).hits == 1

    def test_hit_results_match_slow_path(self, seeded_engine):
        sql = "SELECT name FROM t_user WHERE uid IN (?, ?) ORDER BY uid"
        first = seeded_engine.execute(sql, (1, 2)).fetchall()
        second = seeded_engine.execute(sql, (1, 2)).fetchall()
        third = seeded_engine.execute(sql, (3, 4)).fetchall()
        assert first == second == [("alice",), ("bob",)]
        assert third == [("carol",), ("dave",)]
        assert seeded_engine.plan_cache.hits == 2

    def test_range_select_hits(self, seeded_engine):
        sql = "SELECT COUNT(*) FROM t_user WHERE uid BETWEEN ? AND ?"
        assert seeded_engine.execute(sql, (1, 4)).fetchall() == [(4,)]
        assert seeded_engine.execute(sql, (1, 2)).fetchall() == [(2,)]
        assert seeded_engine.plan_cache.hits == 1

    def test_update_on_hit_path(self, seeded_engine):
        sql = "UPDATE t_user SET age = ? WHERE uid = ?"
        seeded_engine.execute(sql, (40, 1))
        result = seeded_engine.execute(sql, (41, 2))
        assert result.update_count == 1
        assert seeded_engine.plan_cache.hits == 1
        rows = seeded_engine.execute(
            "SELECT age FROM t_user WHERE uid IN (?, ?) ORDER BY uid", (1, 2)
        ).fetchall()
        assert rows == [(40,), (41,)]

    def test_underfilled_params_bypass(self, seeded_engine):
        sql = "SELECT name FROM t_user WHERE uid = ?"
        seeded_engine.execute(sql, (1,))
        seeded_engine.execute(sql + " AND age > 0", (1,))  # different text
        before = seeded_engine.plan_cache.hits
        # a statement whose plan wants 1 param executed with 0 params
        with pytest.raises(Exception):
            seeded_engine.execute(sql, ())
        assert seeded_engine.plan_cache.hits == before
        assert seeded_engine.plan_cache.bypasses >= 1

    def test_insert_is_negative_cached(self, seeded_engine):
        seeded_engine.plan_cache = PlanCache()
        sql = "INSERT INTO t_user (uid, name, age) VALUES (?, ?, ?)"
        seeded_engine.execute(sql, (5, 'eve', 22))
        seeded_engine.execute(sql, (6, 'frank', 23))
        plan = seeded_engine.plan_cache.peek(sql)
        assert plan is not None and not plan.cacheable
        assert seeded_engine.plan_cache.bypasses == 1  # second execution
        # key generation still works through the slow path
        assert seeded_engine.execute(
            "SELECT name FROM t_user WHERE uid = ?", (6,)
        ).fetchall() == [("frank",)]

    def test_hint_values_skip_cache(self, seeded_engine):
        sql = "SELECT name FROM t_user WHERE uid = ?"
        seeded_engine.execute(sql, (1,))
        counters = (seeded_engine.plan_cache.hits, seeded_engine.plan_cache.misses)
        seeded_engine.execute(sql, (1,), hint_values=[1])
        assert (seeded_engine.plan_cache.hits,
                seeded_engine.plan_cache.misses) == counters

    def test_preparsed_statement_skips_cache(self, seeded_engine):
        seeded_engine.plan_cache = PlanCache()
        statement = parse("SELECT name FROM t_user WHERE uid = 1")
        assert seeded_engine.execute(statement).fetchall() == [("alice",)]
        assert len(seeded_engine.plan_cache) == 0

    def test_plan_ast_stays_immutable_across_hits(self, seeded_engine):
        sql = "SELECT name, age FROM t_user WHERE uid = ? ORDER BY age"
        for uid in (1, 2, 3, 4, 1, 2):
            seeded_engine.execute(sql, (uid,)).fetchall()
        plan = seeded_engine.plan_cache.peek(sql)
        assert plan.verify_immutable()
        assert plan.template_count >= 1

    def test_lru_eviction(self, seeded_engine):
        seeded_engine.plan_cache = PlanCache(capacity=2)
        cache = seeded_engine.plan_cache
        for i in range(4):
            seeded_engine.execute(f"SELECT name FROM t_user WHERE uid = {i + 1}")
        assert len(cache) == 2
        assert cache.evictions == 2


# ---------------------------------------------------------------------------
# Invalidation triggers
# ---------------------------------------------------------------------------


class TestInvalidation:
    def test_ddl_invalidates(self, seeded_engine):
        sql = "SELECT name FROM t_user WHERE uid = ?"
        seeded_engine.execute(sql, (1,))
        assert seeded_engine.plan_cache.peek(sql) is not None
        seeded_engine.execute("CREATE TABLE t_dict2 (k VARCHAR(8), v VARCHAR(8))")
        assert seeded_engine.plan_cache.peek(sql) is None
        assert seeded_engine.plan_cache.invalidations == 1
        assert seeded_engine.plan_cache.last_invalidation == "DDL"

    def test_feature_add_remove_invalidates(self, seeded_engine):
        sql = "SELECT name FROM t_user WHERE uid = ?"
        seeded_engine.execute(sql, (1,))
        group = ReadWriteGroup("ds0", primary="ds0", replicas=[])
        feature = ReadWriteSplittingFeature([group])
        seeded_engine.add_feature(feature)
        assert seeded_engine.plan_cache.peek(sql) is None
        seeded_engine.execute(sql, (1,))
        seeded_engine.remove_feature(feature.name)
        assert seeded_engine.plan_cache.peek(sql) is None
        assert seeded_engine.plan_cache.invalidations == 2

    def test_unsafe_feature_disables_caching(self, seeded_engine):
        rule = EncryptRule()
        rule.add("t_dict", EncryptColumn("v", "v_cipher", XorStreamEncryptor("k")))
        feature = EncryptFeature(rule)
        assert feature.plan_cache_safe is False
        seeded_engine.add_feature(feature)
        sql = "SELECT name FROM t_user WHERE uid = ?"
        seeded_engine.execute(sql, (1,))
        seeded_engine.execute(sql, (1,))
        assert len(seeded_engine.plan_cache) == 0
        assert seeded_engine.plan_cache.hits == 0
        # removing the unsafe feature re-enables caching
        seeded_engine.remove_feature(feature.name)
        seeded_engine.execute(sql, (1,))
        seeded_engine.execute(sql, (2,))
        assert seeded_engine.plan_cache.hits == 1

    def test_safe_feature_still_redirects_on_hits(self):
        sources = {name: DataSource(name) for name in ("primary", "replica0")}
        for ds in sources.values():
            ds.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
            ds.execute("INSERT INTO t (id, v) VALUES (1, 10)")
        group = ReadWriteGroup("primary", primary="primary", replicas=["replica0"])
        feature = ReadWriteSplittingFeature([group])
        from repro.engine import SQLEngine

        engine = SQLEngine(sources, ShardingRule(default_data_source="primary"),
                           features=[feature])
        try:
            for _ in range(3):
                engine.execute("SELECT v FROM t WHERE id = ?", (1,)).fetchall()
            assert engine.plan_cache.hits == 2  # caching stayed on
            assert feature.reads_routed == 3  # every hit still redirected
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# DistSQL + runtime integration
# ---------------------------------------------------------------------------


@pytest.fixture
def runtime():
    rt = ShardingRuntime()
    with ShardingDataSource(rt).get_connection() as conn:
        conn.execute("REGISTER RESOURCE ds0, ds1")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=2))"
        )
        conn.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(64))")
        conn.execute(
            "INSERT INTO t_user (uid, name) VALUES (1, 'alice'), (2, 'bob')"
        )
    yield rt
    rt.close()


class TestDistSQL:
    def test_show_plan_cache(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("SELECT name FROM t_user WHERE uid = ?", (1,))
        conn.execute("SELECT name FROM t_user WHERE uid = ?", (2,))
        result = conn.execute("SHOW PLAN CACHE")
        assert result.columns == ["sql", "hits", "templates", "state"]
        rows = result.fetchall()
        cached = {row[0]: row for row in rows}
        entry = cached["SELECT name FROM t_user WHERE uid = ?"]
        assert entry[1] == 1 and entry[3] == "cached"
        assert "hit rate" in result.message

    def test_clear_plan_cache(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("SELECT name FROM t_user WHERE uid = ?", (1,))
        assert len(runtime.engine.plan_cache) > 0
        result = conn.execute("CLEAR PLAN CACHE")
        assert "cleared" in result.message
        assert len(runtime.engine.plan_cache) == 0

    def test_rule_change_invalidates(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        sql = "SELECT name FROM t_user WHERE uid = ?"
        conn.execute(sql, (1,))
        assert runtime.engine.plan_cache.peek(sql) is not None
        conn.execute(
            "CREATE SHARDING TABLE RULE t_order (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=oid, TYPE=mod, PROPERTIES('sharding-count'=2))"
        )
        assert runtime.engine.plan_cache.peek(sql) is None

    def test_register_resource_invalidates(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        sql = "SELECT name FROM t_user WHERE uid = ?"
        conn.execute(sql, (1,))
        conn.execute("REGISTER RESOURCE ds9")
        assert runtime.engine.plan_cache.peek(sql) is None

    def test_set_variable_toggles_cache(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        # fresh cache: the fixture's setup statements already count misses
        runtime.engine.plan_cache = cache = PlanCache()
        sql = "SELECT name FROM t_user WHERE uid = ?"
        conn.execute("SET VARIABLE plan_cache = off")
        assert cache.enabled is False
        conn.execute(sql, (1,))
        conn.execute(sql, (2,))
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)
        conn.execute("SET VARIABLE plan_cache = on")
        conn.execute(sql, (1,))
        conn.execute(sql, (2,))
        assert (cache.hits, cache.misses) == (1, 1)

    def test_trace_shows_plan_cache_hit_span(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("SELECT name FROM t_user WHERE uid = 1")
        result = conn.execute("TRACE SELECT name FROM t_user WHERE uid = 1")
        labels = [str(row[0]) for row in result.fetchall()]
        assert any("plan_cache_hit" in label for label in labels)
        for skipped in ("parse", "route", "rewrite"):
            assert not any(label.endswith(skipped) for label in labels)

    def test_metrics_registry_exposes_plan_cache(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("SELECT name FROM t_user WHERE uid = ?", (1,))
        conn.execute("SELECT name FROM t_user WHERE uid = ?", (2,))
        families = {
            name: samples
            for name, _kind, _help, samples in runtime.observability.registry.collect()
        }
        events = {
            labels["event"]: value
            for labels, value in families["engine_plan_cache_events_total"]
        }
        assert events["hit"] >= 1.0 and events["miss"] >= 1.0
        ((_, size),) = families["engine_plan_cache_size"]
        assert size >= 1.0


class TestPreparedStatement:
    def test_prepare_execute_and_plan(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        stmt = conn.prepare("SELECT name FROM t_user WHERE uid = ?")
        assert isinstance(stmt, PreparedStatement)
        assert stmt.execute((1,)).fetchall() == [("alice",)]
        assert stmt.execute((2,)).fetchall() == [("bob",)]
        plan = stmt.plan()
        assert plan is not None and plan.cacheable
        assert plan.hits == 1
        assert "t_user" in repr(stmt)
