"""Tests for the pluggable features: rw-split, encrypt, shadow, circuit,
throttle and scaling — each combined with the sharding pipeline."""

import pytest

from repro.engine import SQLEngine
from repro.exceptions import CircuitBreakerOpenError, ShardingSphereError, ThrottledError
from repro.features import (
    CircuitBreakerFeature,
    CircuitState,
    EncryptColumn,
    EncryptFeature,
    EncryptRule,
    MD5Encryptor,
    RandomLoadBalancer,
    ReadWriteGroup,
    ReadWriteSplittingFeature,
    RoundRobinLoadBalancer,
    ScalingJob,
    ShadowFeature,
    ShadowRule,
    ThrottleFeature,
    WeightedLoadBalancer,
    XorStreamEncryptor,
    create_encryptor,
)
from repro.sharding import ShardingRule, build_auto_table_rule, create_physical_tables
from repro.storage import DataSource


class TestLoadBalancers:
    def test_round_robin_cycles(self):
        lb = RoundRobinLoadBalancer()
        picks = [lb.choose(["a", "b", "c"]) for _ in range(6)]
        assert picks == ["a", "b", "c", "a", "b", "c"]

    def test_random_stays_within_replicas(self):
        lb = RandomLoadBalancer(seed=7)
        assert all(lb.choose(["a", "b"]) in ("a", "b") for _ in range(20))

    def test_weighted_prefers_heavy(self):
        lb = WeightedLoadBalancer({"a": 9, "b": 1}, seed=3)
        picks = [lb.choose(["a", "b"]) for _ in range(200)]
        assert picks.count("a") > picks.count("b") * 3


@pytest.fixture
def rw_cluster():
    """primary + 2 replicas, unsharded single table everywhere."""
    sources = {name: DataSource(name) for name in ("primary", "replica0", "replica1")}
    for ds in sources.values():
        ds.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
        ds.execute("INSERT INTO t (id, v) VALUES (1, 10)")
    rule = ShardingRule(default_data_source="primary")
    group = ReadWriteGroup("primary", primary="primary", replicas=["replica0", "replica1"])
    feature = ReadWriteSplittingFeature([group])
    engine = SQLEngine(sources, rule, features=[feature])
    yield sources, engine, feature
    engine.close()


class TestReadWriteSplitting:
    def test_reads_round_robin_over_replicas(self, rw_cluster):
        sources, engine, feature = rw_cluster
        engine.execute("SELECT * FROM t").fetchall()
        engine.execute("SELECT * FROM t").fetchall()
        assert feature.reads_routed == 2

    def test_writes_go_to_primary(self, rw_cluster):
        sources, engine, feature = rw_cluster
        engine.execute("UPDATE t SET v = 99 WHERE id = 1")
        assert sources["primary"].execute("SELECT v FROM t WHERE id = 1") == [(99,)]
        assert sources["replica0"].execute("SELECT v FROM t WHERE id = 1") == [(10,)]
        assert feature.writes_routed == 1

    def test_select_for_update_goes_to_primary(self, rw_cluster):
        sources, engine, feature = rw_cluster
        engine.execute("SELECT * FROM t WHERE id = 1 FOR UPDATE").fetchall()
        assert feature.writes_routed == 1
        assert feature.reads_routed == 0

    def test_unhealthy_replicas_skipped(self):
        sources = {name: DataSource(name) for name in ("primary", "replica0")}
        for ds in sources.values():
            ds.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        group = ReadWriteGroup("primary", primary="primary", replicas=["replica0"])
        feature = ReadWriteSplittingFeature([group], is_up=lambda name: name != "replica0")
        engine = SQLEngine(sources, ShardingRule(default_data_source="primary"), features=[feature])
        engine.execute("SELECT * FROM t").fetchall()
        assert feature.writes_routed == 1  # fell back to primary
        engine.close()

    def test_in_transaction_reads_go_to_primary(self):
        sources = {name: DataSource(name) for name in ("primary", "replica0")}
        for ds in sources.values():
            ds.execute("CREATE TABLE t (id INT PRIMARY KEY)")
        group = ReadWriteGroup("primary", primary="primary", replicas=["replica0"])
        feature = ReadWriteSplittingFeature([group], in_transaction=lambda: True)
        engine = SQLEngine(sources, ShardingRule(default_data_source="primary"), features=[feature])
        engine.execute("SELECT * FROM t").fetchall()
        assert feature.writes_routed == 1
        engine.close()


@pytest.fixture
def encrypted_engine(fleet, paper_rule):
    rule = EncryptRule()
    rule.add("t_user", EncryptColumn("name", "name_cipher", XorStreamEncryptor("k1")))
    for i, ds in enumerate(fleet.values()):
        ds.execute(f"DROP TABLE t_user_h{i}")
        ds.execute(
            f"CREATE TABLE t_user_h{i} (uid INT PRIMARY KEY, name_cipher VARCHAR(128), age INT)"
        )
    engine = SQLEngine(fleet, paper_rule, features=[EncryptFeature(rule)])
    yield fleet, engine
    engine.close()


class TestEncrypt:
    def test_insert_stores_ciphertext(self, encrypted_engine):
        fleet, engine = encrypted_engine
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (2, 'bob', 25)")
        stored = fleet["ds0"].execute("SELECT name_cipher FROM t_user_h0")[0][0]
        assert stored != "bob"
        assert XorStreamEncryptor("k1").decrypt(stored) == "bob"

    def test_select_decrypts_transparently(self, encrypted_engine):
        fleet, engine = encrypted_engine
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (2, 'bob', 25)")
        rows = engine.execute("SELECT name FROM t_user WHERE uid = 2").fetchall()
        assert rows == [("bob",)]

    def test_where_equality_on_encrypted_column(self, encrypted_engine):
        fleet, engine = encrypted_engine
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (2, 'bob', 25), (4, 'dave', 30)")
        rows = engine.execute("SELECT uid FROM t_user WHERE name = 'dave'").fetchall()
        assert rows == [(4,)]

    def test_update_encrypts_new_value(self, encrypted_engine):
        fleet, engine = encrypted_engine
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (2, 'bob', 25)")
        engine.execute("UPDATE t_user SET name = 'robert' WHERE uid = 2")
        rows = engine.execute("SELECT name FROM t_user WHERE uid = 2").fetchall()
        assert rows == [("robert",)]

    def test_placeholder_values_encrypted(self, encrypted_engine):
        fleet, engine = encrypted_engine
        engine.execute("INSERT INTO t_user (uid, name, age) VALUES (?, ?, ?)", (2, "eve", 20))
        rows = engine.execute("SELECT uid FROM t_user WHERE name = ?", ("eve",)).fetchall()
        assert rows == [(2,)]

    def test_md5_is_one_way(self):
        encryptor = MD5Encryptor()
        digest = encryptor.encrypt("secret")
        assert digest != "secret"
        assert encryptor.decrypt(digest) == digest

    def test_registry(self):
        assert isinstance(create_encryptor("aes", key="x"), XorStreamEncryptor)
        with pytest.raises(Exception):
            create_encryptor("rot13")


class TestShadow:
    @pytest.fixture
    def shadow_setup(self):
        sources = {"prod": DataSource("prod"), "prod_shadow": DataSource("prod_shadow")}
        for ds in sources.values():
            ds.execute("CREATE TABLE t (id INT PRIMARY KEY, is_shadow BOOLEAN, v INT)")
        rule = ShardingRule(default_data_source="prod")
        feature = ShadowFeature(ShadowRule(mapping={"prod": "prod_shadow"}))
        engine = SQLEngine(sources, rule, features=[feature])
        yield sources, engine, feature
        engine.close()

    def test_shadow_insert_redirected(self, shadow_setup):
        sources, engine, feature = shadow_setup
        engine.execute("INSERT INTO t (id, is_shadow, v) VALUES (1, TRUE, 10)")
        assert sources["prod_shadow"].execute("SELECT COUNT(*) FROM t") == [(1,)]
        assert sources["prod"].execute("SELECT COUNT(*) FROM t") == [(0,)]

    def test_production_insert_stays(self, shadow_setup):
        sources, engine, feature = shadow_setup
        engine.execute("INSERT INTO t (id, is_shadow, v) VALUES (1, FALSE, 10)")
        assert sources["prod"].execute("SELECT COUNT(*) FROM t") == [(1,)]
        assert sources["prod_shadow"].execute("SELECT COUNT(*) FROM t") == [(0,)]

    def test_shadow_select_redirected(self, shadow_setup):
        sources, engine, feature = shadow_setup
        sources["prod_shadow"].execute("INSERT INTO t (id, is_shadow, v) VALUES (9, TRUE, 1)")
        rows = engine.execute("SELECT id FROM t WHERE is_shadow = TRUE").fetchall()
        assert rows == [(9,)]

    def test_mixed_rows_not_shadow(self, shadow_setup):
        sources, engine, feature = shadow_setup
        engine.execute("INSERT INTO t (id, is_shadow, v) VALUES (1, TRUE, 1), (2, FALSE, 2)")
        assert sources["prod"].execute("SELECT COUNT(*) FROM t") == [(2,)]


class TestCircuitBreaker:
    def test_opens_after_threshold(self, seeded_engine):
        breaker = CircuitBreakerFeature(failure_threshold=2, reset_timeout=60)
        seeded_engine.add_feature(breaker)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is CircuitState.OPEN
        with pytest.raises(CircuitBreakerOpenError):
            seeded_engine.execute("SELECT 1 FROM t_user WHERE uid = 1")

    def test_half_open_probe_closes(self, seeded_engine):
        breaker = CircuitBreakerFeature(failure_threshold=1, reset_timeout=0.0)
        seeded_engine.add_feature(breaker)
        breaker.record_failure()
        # reset_timeout elapsed -> probe allowed; success closes the circuit
        seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        assert breaker.state is CircuitState.CLOSED

    def test_manual_trip_and_reset(self, seeded_engine):
        breaker = CircuitBreakerFeature(reset_timeout=60)
        seeded_engine.add_feature(breaker)
        breaker.trip()
        with pytest.raises(CircuitBreakerOpenError):
            seeded_engine.execute("SELECT * FROM t_user")
        breaker.reset()
        assert seeded_engine.execute("SELECT COUNT(*) FROM t_user").fetchall() == [(4,)]


class TestThrottle:
    def test_burst_then_reject(self, seeded_engine):
        seeded_engine.add_feature(ThrottleFeature(rate=0.001, burst=2))
        seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        with pytest.raises(ThrottledError):
            seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1")

    def test_tokens_refill(self, seeded_engine):
        import time

        seeded_engine.add_feature(ThrottleFeature(rate=100, burst=1))
        seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        time.sleep(0.05)
        seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            ThrottleFeature(rate=0)


class TestScaling:
    def make_cluster(self, shards_before=2, sources_before=1):
        names = [f"ds{i}" for i in range(4)]
        sources = {n: DataSource(n) for n in names}
        rule_obj = build_auto_table_rule(
            "t_big", names[:sources_before], sharding_column="id",
            algorithm_type="MOD", properties={"sharding-count": shards_before},
        )
        from repro.storage import Column, TableSchema, make_type

        schema = TableSchema(
            "t_big",
            [Column("id", make_type("INT"), not_null=True), Column("v", make_type("INT"))],
            primary_key=["id"],
        )
        create_physical_tables(rule_obj, schema, sources)
        rule = ShardingRule([rule_obj], default_data_source="ds0")
        engine = SQLEngine(sources, rule, max_connections_per_query=4)
        for i in range(50):
            engine.execute(f"INSERT INTO t_big (id, v) VALUES ({i}, {i * 2})")
        return sources, rule, engine

    def test_reshard_2_to_4(self):
        sources, rule, engine = self.make_cluster()
        target = build_auto_table_rule(
            "t_big_v2", list(sources), sharding_column="id",
            algorithm_type="MOD", properties={"sharding-count": 4},
        )
        # target logic table must be the same; rebuild with matching name
        from repro.sharding import TableRule, StandardShardingStrategy, create_algorithm, DataNode

        target = TableRule(
            "t_big",
            [DataNode(f"ds{i % 4}", f"t_big_new_{i}") for i in range(4)],
            table_strategy=StandardShardingStrategy(
                "id", create_algorithm("MOD", {"sharding-count": 4})
            ),
            auto=True,
        )
        job = ScalingJob(rule, target, sources)
        report = job.run()
        assert report.rows_migrated == 50
        assert report.consistent
        # traffic now flows through the new layout
        assert engine.execute("SELECT COUNT(*) FROM t_big").fetchall() == [(50,)]
        rows = engine.execute("SELECT v FROM t_big WHERE id = 13").fetchall()
        assert rows == [(26,)]
        engine.close()

    def test_progress_callbacks(self):
        sources, rule, engine = self.make_cluster()
        from repro.sharding import TableRule, StandardShardingStrategy, create_algorithm, DataNode

        target = TableRule(
            "t_big",
            [DataNode("ds1", "t_big_x0"), DataNode("ds2", "t_big_x1")],
            table_strategy=StandardShardingStrategy(
                "id", create_algorithm("MOD", {"sharding-count": 2})
            ),
            auto=True,
        )
        phases = []
        job = ScalingJob(rule, target, sources, progress=lambda p, c: phases.append(p))
        job.run()
        # one "inventory" event per source node
        assert phases == ["preparing", "inventory", "inventory", "checking", "switching"]
        engine.close()

    def test_colliding_target_rejected(self):
        sources, rule, engine = self.make_cluster()
        current = rule.table_rule("t_big")
        job = ScalingJob(rule, current, sources)
        with pytest.raises(ShardingSphereError):
            job.run()
        engine.close()

    def test_drop_source_tables(self):
        sources, rule, engine = self.make_cluster()
        from repro.sharding import TableRule, StandardShardingStrategy, create_algorithm, DataNode

        target = TableRule(
            "t_big",
            [DataNode("ds3", "t_big_y0"), DataNode("ds3", "t_big_y1")],
            table_strategy=StandardShardingStrategy(
                "id", create_algorithm("MOD", {"sharding-count": 2})
            ),
            auto=True,
        )
        job = ScalingJob(rule, target, sources, drop_source_tables=True)
        job.run()
        assert not sources["ds0"].database.has_table("t_big_0")
        engine.close()
