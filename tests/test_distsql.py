"""Tests for DistSQL: RDL / RQL / RAL parsing and execution."""

import pytest

from repro.adaptors import ShardingRuntime
from repro.distsql import execute_distsql, is_distsql, parse_distsql
from repro.distsql.parser import (
    CreateBindingRule,
    CreateShardingTableRule,
    Preview,
    RegisterResource,
    SetVariable,
)
from repro.exceptions import DistSQLError


@pytest.fixture
def runtime():
    rt = ShardingRuntime()
    yield rt
    rt.close()


@pytest.fixture
def configured(runtime):
    execute_distsql("REGISTER RESOURCE ds0, ds1", runtime)
    execute_distsql(
        "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
        "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=2))",
        runtime,
    )
    return runtime


class TestDetection:
    @pytest.mark.parametrize(
        "sql",
        [
            "REGISTER RESOURCE ds0",
            "create sharding table rule x (RESOURCES(a), SHARDING_COLUMN=c)",
            "SHOW SHARDING TABLE RULES",
            "SET VARIABLE transaction_type = XA",
            "PREVIEW SELECT 1",
        ],
    )
    def test_distsql_detected(self, sql):
        assert is_distsql(sql)

    @pytest.mark.parametrize(
        "sql",
        ["SELECT * FROM t", "INSERT INTO t VALUES (1)", "SHOW TABLES", "CREATE TABLE t (a INT)"],
    )
    def test_plain_sql_not_detected(self, sql):
        assert not is_distsql(sql)


class TestParser:
    def test_register_with_properties(self):
        stmt = parse_distsql("REGISTER RESOURCE ds0 (PROPERTIES('dialect'='PostgreSQL'))")
        assert isinstance(stmt, RegisterResource)
        assert stmt.resources == [("ds0", {"dialect": "PostgreSQL"})]

    def test_paper_example_create_rule(self):
        """The exact RDL statement shown in Section V-A of the paper."""
        stmt = parse_distsql(
            "CREATE SHARDING TABLE RULE t_user_h (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=2))"
        )
        assert isinstance(stmt, CreateShardingTableRule)
        assert stmt.table == "t_user_h"
        assert stmt.resources == ["ds0", "ds1"]
        assert stmt.sharding_column == "uid"
        assert stmt.algorithm_type == "HASH_MOD"
        assert stmt.properties == {"sharding-count": 2}

    def test_alter_flag(self):
        stmt = parse_distsql(
            "ALTER SHARDING TABLE RULE t (RESOURCES(ds0), SHARDING_COLUMN=c, "
            "PROPERTIES('sharding-count'=1))"
        )
        assert stmt.alter

    def test_binding_rule(self):
        stmt = parse_distsql("CREATE SHARDING BINDING TABLE RULES (t_user, t_order)")
        assert isinstance(stmt, CreateBindingRule)
        assert stmt.tables == ["t_user", "t_order"]

    def test_set_variable(self):
        stmt = parse_distsql("SET VARIABLE transaction_type = XA")
        assert isinstance(stmt, SetVariable)
        assert stmt.value == "XA"

    def test_preview_wraps_sql(self):
        stmt = parse_distsql("PREVIEW SELECT * FROM t WHERE a = 1")
        assert isinstance(stmt, Preview)
        assert stmt.sql == "SELECT * FROM t WHERE a = 1"

    def test_rule_requires_resources(self):
        with pytest.raises(DistSQLError):
            parse_distsql("CREATE SHARDING TABLE RULE t (SHARDING_COLUMN=c)")

    def test_rule_requires_column(self):
        with pytest.raises(DistSQLError):
            parse_distsql("CREATE SHARDING TABLE RULE t (RESOURCES(ds0))")

    def test_garbage_rejected(self):
        with pytest.raises(DistSQLError):
            parse_distsql("SHOW NONSENSE THINGS")


class TestRDLExecution:
    def test_register_creates_data_sources(self, runtime):
        result = execute_distsql("REGISTER RESOURCE ds0, ds1", runtime)
        assert "2 resource" in result.message
        assert set(runtime.data_sources) == {"ds0", "ds1"}

    def test_register_duplicate_rejected(self, runtime):
        execute_distsql("REGISTER RESOURCE ds0", runtime)
        with pytest.raises(DistSQLError):
            execute_distsql("REGISTER RESOURCE ds0", runtime)

    def test_register_with_dialect(self, runtime):
        execute_distsql("REGISTER RESOURCE pg (PROPERTIES('dialect'='PostgreSQL'))", runtime)
        assert runtime.data_sources["pg"].dialect.name == "PostgreSQL"

    def test_unregister(self, runtime):
        execute_distsql("REGISTER RESOURCE ds0", runtime)
        execute_distsql("UNREGISTER RESOURCE ds0", runtime)
        assert runtime.data_sources == {}

    def test_unregister_in_use_rejected(self, configured):
        with pytest.raises(DistSQLError):
            execute_distsql("UNREGISTER RESOURCE ds0", configured)

    def test_create_rule_unknown_resource_rejected(self, runtime):
        with pytest.raises(DistSQLError):
            execute_distsql(
                "CREATE SHARDING TABLE RULE t (RESOURCES(nope), SHARDING_COLUMN=c, "
                "PROPERTIES('sharding-count'=1))",
                runtime,
            )

    def test_autotable_flow_creates_physical_tables(self, configured):
        """Rule first, then a logical CREATE TABLE materializes the shards."""
        configured.engine.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, v INT)")
        assert configured.data_sources["ds0"].database.has_table("t_user_0")
        assert configured.data_sources["ds1"].database.has_table("t_user_1")

    def test_create_duplicate_rule_needs_alter(self, configured):
        with pytest.raises(DistSQLError):
            execute_distsql(
                "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0), SHARDING_COLUMN=uid, "
                "PROPERTIES('sharding-count'=1))",
                configured,
            )
        result = execute_distsql(
            "ALTER SHARDING TABLE RULE t_user (RESOURCES(ds0), SHARDING_COLUMN=uid, "
            "PROPERTIES('sharding-count'=1))",
            configured,
        )
        assert "altered" in result.message

    def test_alter_missing_rule_rejected(self, configured):
        with pytest.raises(DistSQLError):
            execute_distsql(
                "ALTER SHARDING TABLE RULE ghost (RESOURCES(ds0), SHARDING_COLUMN=c, "
                "PROPERTIES('sharding-count'=1))",
                configured,
            )

    def test_drop_rule(self, configured):
        execute_distsql("DROP SHARDING TABLE RULE t_user", configured)
        assert not configured.rule.is_sharded("t_user")

    def test_binding_rules(self, configured):
        execute_distsql(
            "CREATE SHARDING TABLE RULE t_order (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=2))",
            configured,
        )
        execute_distsql("CREATE SHARDING BINDING TABLE RULES (t_user, t_order)", configured)
        assert configured.rule.are_binding(["t_user", "t_order"])

    def test_broadcast_rule(self, configured):
        execute_distsql("CREATE BROADCAST TABLE RULE t_dict", configured)
        assert configured.rule.is_broadcast("t_dict")

    def test_rwsplit_rule_adds_feature(self, configured):
        execute_distsql("REGISTER RESOURCE replica0", configured)
        execute_distsql(
            "CREATE READWRITE_SPLITTING RULE g0 (PRIMARY=ds0, REPLICAS(replica0))", configured
        )
        assert configured._rwsplit_feature is not None
        assert configured._rwsplit_feature.groups["ds0"].replicas == ["replica0"]

    def test_rules_persisted_in_governor(self, configured):
        stored = configured.config_center.load_rule("sharding", "t_user")
        assert stored["sharding_column"] == "uid"


class TestRQLExecution:
    def test_show_resources(self, configured):
        result = execute_distsql("SHOW RESOURCES", configured)
        assert result.columns == ["name", "dialect", "database"]
        assert [r[0] for r in result.rows] == ["ds0", "ds1"]

    def test_show_sharding_rules(self, configured):
        result = execute_distsql("SHOW SHARDING TABLE RULES", configured)
        assert result.rows[0][0] == "t_user"
        assert "ds0.t_user_0" in result.rows[0][1]

    def test_show_algorithms_lists_ten_presets(self, configured):
        result = execute_distsql("SHOW SHARDING ALGORITHMS", configured)
        assert len(result.rows) >= 10

    def test_show_binding_and_broadcast(self, configured):
        execute_distsql("CREATE BROADCAST TABLE RULE t_dict", configured)
        result = execute_distsql("SHOW BROADCAST TABLE RULES", configured)
        assert result.rows == [("t_dict",)]


class TestRALExecution:
    def test_set_transaction_type_paper_example(self, configured):
        """'SET VARIABLE transaction_type = <type>' from Section V-A."""
        for type_name in ("LOCAL", "XA", "BASE"):
            execute_distsql(f"SET VARIABLE transaction_type = {type_name}", configured)
            assert configured.variables["transaction_type"] == type_name
            assert configured.transaction_manager.transaction_type.value == type_name

    def test_set_max_connections(self, configured):
        execute_distsql("SET VARIABLE max_connections_per_query = 5", configured)
        assert configured.engine.executor.max_connections_per_query == 5

    def test_unknown_variable_rejected(self, configured):
        with pytest.raises(DistSQLError):
            execute_distsql("SET VARIABLE nope = 1", configured)

    def test_show_variable(self, configured):
        execute_distsql("SET VARIABLE transaction_type = XA", configured)
        result = execute_distsql("SHOW VARIABLE transaction_type", configured)
        assert result.rows == [("transaction_type", "XA")]

    def test_preview_shows_routed_sql(self, configured):
        configured.engine.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, v INT)")
        result = execute_distsql("PREVIEW SELECT * FROM t_user WHERE uid = 0", configured)
        assert len(result.rows) == 1
        ds, sql = result.rows[0]
        assert sql == "SELECT * FROM t_user_0 WHERE uid = 0"


class TestMigrateTable:
    """RAL scaling: MIGRATE TABLE reshards online through a ScalingJob."""

    @pytest.fixture
    def loaded(self, configured):
        configured.engine.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, v INT)")
        for i in range(40):
            configured.engine.execute(f"INSERT INTO t_user (uid, v) VALUES ({i}, {i})")
        return configured

    def test_parse(self):
        from repro.distsql.parser import MigrateTable

        stmt = parse_distsql(
            "MIGRATE TABLE t_user (RESOURCES(ds2, ds3), SHARDING_COLUMN=uid, "
            "TYPE=hash_mod, PROPERTIES('sharding-count'=8))"
        )
        assert isinstance(stmt, MigrateTable)
        assert stmt.resources == ["ds2", "ds3"]
        assert stmt.properties == {"sharding-count": 8}

    def test_detected_as_distsql(self):
        assert is_distsql("MIGRATE TABLE t (RESOURCES(a), SHARDING_COLUMN=k)")

    def test_migrate_to_more_shards(self, loaded):
        execute_distsql("REGISTER RESOURCE ds2, ds3", loaded)
        result = execute_distsql(
            "MIGRATE TABLE t_user (RESOURCES(ds0, ds1, ds2, ds3), "
            "SHARDING_COLUMN=uid, TYPE=hash_mod, PROPERTIES('sharding-count'=8))",
            loaded,
        )
        assert result.rows[0][1] == 40  # rows migrated
        assert result.rows[0][4] is True  # consistent
        # logical view intact on the new layout
        assert loaded.engine.execute("SELECT COUNT(*) FROM t_user").fetchall() == [(40,)]
        assert loaded.engine.execute("SELECT v FROM t_user WHERE uid = 17").fetchall() == [(17,)]
        # new layout has 8 nodes over 4 sources
        assert len(loaded.rule.table_rule("t_user").data_nodes) == 8
        # old physical tables are gone
        assert not loaded.data_sources["ds0"].database.has_table("t_user_0")

    def test_migrate_unknown_table_rejected(self, configured):
        with pytest.raises(DistSQLError):
            execute_distsql(
                "MIGRATE TABLE ghost (RESOURCES(ds0), SHARDING_COLUMN=k, "
                "PROPERTIES('sharding-count'=1))",
                configured,
            )

    def test_migrate_unknown_resource_rejected(self, loaded):
        with pytest.raises(DistSQLError):
            execute_distsql(
                "MIGRATE TABLE t_user (RESOURCES(nowhere), SHARDING_COLUMN=uid, "
                "PROPERTIES('sharding-count'=2))",
                loaded,
            )
