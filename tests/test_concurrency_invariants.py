"""Concurrency invariants: money conservation and isolation under load.

These are the failure-injection / stress tests DESIGN.md calls out: many
threads move value between accounts on different shards; under XA the
total must be conserved no matter which failures are injected.
"""

import random
import threading

import pytest

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.sharding import ShardingRule, build_auto_table_rule, create_physical_tables
from repro.storage import Column, DataSource, TableSchema, make_type
from repro.transaction import TransactionType

ACCOUNTS = 16
INITIAL = 1_000


@pytest.fixture
def bank():
    sources = {"ds0": DataSource("ds0"), "ds1": DataSource("ds1")}
    schema = TableSchema(
        "acct",
        [Column("aid", make_type("INT"), not_null=True),
         Column("balance", make_type("INT"), not_null=True)],
        primary_key=["aid"],
    )
    rule_obj = build_auto_table_rule(
        "acct", ["ds0", "ds1"], sharding_column="aid",
        algorithm_type="MOD", properties={"sharding-count": 4},
    )
    create_physical_tables(rule_obj, schema, sources)
    runtime = ShardingRuntime(
        sources, ShardingRule([rule_obj], default_data_source="ds0"),
        transaction_type=TransactionType.XA,
        max_connections_per_query=4,
    )
    data_source = ShardingDataSource(runtime)
    conn = data_source.get_connection()
    values = ", ".join(f"({i}, {INITIAL})" for i in range(ACCOUNTS))
    conn.execute(f"INSERT INTO acct (aid, balance) VALUES {values}")
    conn.close()
    yield data_source
    data_source.close()


def total_balance(data_source):
    conn = data_source.get_connection()
    try:
        return conn.execute("SELECT SUM(balance) FROM acct").fetchall()[0][0]
    finally:
        conn.close()


def transfer_worker(data_source, worker_id, iterations, errors):
    rng = random.Random(worker_id)
    conn = data_source.get_connection()
    try:
        for _ in range(iterations):
            src, dst = rng.sample(range(ACCOUNTS), 2)
            amount = rng.randint(1, 20)
            try:
                conn.begin()
                conn.execute(
                    "UPDATE acct SET balance = balance - ? WHERE aid = ?", (amount, src)
                )
                conn.execute(
                    "UPDATE acct SET balance = balance + ? WHERE aid = ?", (amount, dst)
                )
                conn.commit()
            except Exception as exc:
                errors.append(exc)
                try:
                    conn.rollback()
                except Exception:
                    pass
    finally:
        conn.close()


class TestMoneyConservation:
    def test_concurrent_xa_transfers_conserve_total(self, bank):
        errors: list = []
        threads = [
            threading.Thread(target=transfer_worker, args=(bank, i, 30, errors))
            for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        assert errors == []
        assert total_balance(bank) == ACCOUNTS * INITIAL

    def test_transfers_with_injected_prepare_failures_conserve_total(self, bank):
        """Random prepare failures abort whole transactions atomically."""
        errors: list = []
        for source in bank.runtime.data_sources.values():
            source.database.fail_next("prepare", times=5)
        threads = [
            threading.Thread(target=transfer_worker, args=(bank, 100 + i, 25, errors))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        # some transactions failed...
        assert errors
        # ...but no money was created or destroyed
        assert total_balance(bank) == ACCOUNTS * INITIAL

    def test_rollback_mid_transfer_leaves_total_intact(self, bank):
        conn = bank.get_connection()
        conn.begin()
        conn.execute("UPDATE acct SET balance = balance - 500 WHERE aid = 0")
        conn.execute("UPDATE acct SET balance = balance + 500 WHERE aid = 1")
        conn.rollback()
        conn.close()
        assert total_balance(bank) == ACCOUNTS * INITIAL


class TestConcurrentReadersAndWriters:
    def test_aggregation_during_writes_never_crashes(self, bank):
        stop = threading.Event()
        failures: list = []

        def reader():
            conn = bank.get_connection()
            try:
                while not stop.is_set():
                    conn.execute("SELECT COUNT(*), SUM(balance) FROM acct").fetchall()
            except Exception as exc:  # pragma: no cover
                failures.append(exc)
            finally:
                conn.close()

        errors: list = []
        readers = [threading.Thread(target=reader) for _ in range(2)]
        writers = [
            threading.Thread(target=transfer_worker, args=(bank, 200 + i, 25, errors))
            for i in range(3)
        ]
        for t in readers + writers:
            t.start()
        for t in writers:
            t.join(timeout=60)
        stop.set()
        for t in readers:
            t.join(timeout=10)
        assert failures == []
        assert errors == []
        assert total_balance(bank) == ACCOUNTS * INITIAL
