"""Deep-clone coverage for ``ast.clone_statement``.

The plan cache shares one immutable AST across executions, and the
rewriter mutates clones in place (table renames, parameter renumbering,
derived columns) — so a shallow clone that aliases any node would
corrupt every later execution of the same SQL text. Each case clones,
mutates every mutable node class reachable in the clone, and asserts the
original still renders byte-identically.
"""

import pytest

from repro.sql import ast, parse
from repro.sql.formatter import format_statement

CASES = [
    "SELECT uid, name FROM t_user WHERE uid = ?",
    "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid "
    "WHERE u.uid = ? AND o.amount > 5.0",
    "SELECT uid, COUNT(*) AS n FROM t_order WHERE amount BETWEEN ? AND ? "
    "GROUP BY uid HAVING COUNT(*) > 1 ORDER BY n DESC LIMIT 10 OFFSET 2",
    "SELECT name FROM t_user WHERE uid IN (?, ?, ?) ORDER BY name",
    "SELECT DISTINCT age FROM t_user WHERE name = ? FOR UPDATE",
    "INSERT INTO t_user (uid, name, age) VALUES (?, ?, ?), (?, ?, ?)",
    "UPDATE t_user SET name = ?, age = age + 1 WHERE uid = ?",
    "DELETE FROM t_order WHERE uid = ? AND amount < ?",
]


def _mutate_everything(stmt: ast.Statement) -> None:
    """Aggressively rewrite every node kind the rewriter touches."""
    for table in stmt.tables():
        table.name = "mutated_" + table.name
        table.alias = "zz"
    for expr in _expressions(stmt):
        for node in expr.walk():
            if isinstance(node, ast.Placeholder):
                node.index += 100
            elif isinstance(node, ast.Literal):
                node.value = "poisoned"
            elif isinstance(node, ast.ColumnRef):
                node.name = "mutated_" + node.name
    if isinstance(stmt, ast.SelectStatement):
        stmt.select_items.append(
            ast.SelectItem(ast.ColumnRef("extra", None), "extra", True)
        )
        stmt.order_by.clear()
        stmt.group_by.clear()
        stmt.limit = None
    elif isinstance(stmt, ast.InsertStatement):
        stmt.columns.append("extra_col")
        stmt.values_rows.append([ast.Literal(0)])
    elif isinstance(stmt, ast.UpdateStatement):
        stmt.assignments.clear()


def _expressions(stmt: ast.Statement):
    if isinstance(stmt, ast.SelectStatement):
        for item in stmt.select_items:
            yield item.expression
        for join in stmt.joins:
            if join.condition is not None:
                yield join.condition
        if stmt.where is not None:
            yield stmt.where
        yield from stmt.group_by
        if stmt.having is not None:
            yield stmt.having
        for item in stmt.order_by:
            yield item.expression
    elif isinstance(stmt, ast.InsertStatement):
        for row in stmt.values_rows:
            yield from row
    elif isinstance(stmt, ast.UpdateStatement):
        for _, value in stmt.assignments:
            yield value
        if stmt.where is not None:
            yield stmt.where
    elif isinstance(stmt, ast.DeleteStatement):
        if stmt.where is not None:
            yield stmt.where


@pytest.mark.parametrize("sql", CASES)
def test_clone_is_fully_detached(sql):
    original = parse(sql)
    rendered = format_statement(original)
    fingerprint = ast.fingerprint_statement(original)

    clone = ast.clone_statement(original)
    assert format_statement(clone) == rendered  # faithful copy ...
    _mutate_everything(clone)

    # ... and mutating the clone never leaks back into the original
    assert format_statement(original) == rendered
    assert ast.fingerprint_statement(original) == fingerprint


@pytest.mark.parametrize("sql", CASES)
def test_clone_of_clone_round_trips(sql):
    original = parse(sql)
    twice = ast.clone_statement(ast.clone_statement(original))
    assert format_statement(twice) == format_statement(original)


def test_clone_preserves_placeholder_indexes():
    stmt = parse("SELECT name FROM t_user WHERE uid = ? AND age > ?")
    clone = ast.clone_statement(stmt)
    indexes = [
        node.index
        for expr in _expressions(clone)
        for node in expr.walk()
        if isinstance(node, ast.Placeholder)
    ]
    assert indexes == [0, 1]
