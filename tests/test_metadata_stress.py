"""Concurrency stress: readers under live reconfiguration (no torn snapshots).

Satellite of the versioned-metadata PR: reader threads hammer point
selects while a writer loops RDL (CREATE/DROP SHARDING TABLE RULE) and
resource churn (REGISTER/UNREGISTER RESOURCE). The contracts under test:

- no statement ever errors because config changed mid-flight;
- every statement observes exactly ONE metadata snapshot — all of its
  trace spans carry the same ``metadata_version`` attribute;
- results stay correct throughout (the row for ``uid`` comes back);
- once the churn settles, new statements route by the latest rule.

Marked ``concurrency``; CI runs this file three times to shake out
interleavings (`pytest -m concurrency`).
"""

import random
import threading

import pytest

from repro.adaptors import ShardingDataSource, ShardingRuntime

READERS = 4
WRITER_ROUNDS = 25
USERS = 50


@pytest.fixture
def runtime():
    rt = ShardingRuntime(max_connections_per_query=4)
    with ShardingDataSource(rt).get_connection() as conn:
        conn.execute("REGISTER RESOURCE ds0, ds1")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=2))"
        )
        conn.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(64))")
        for uid in range(1, USERS + 1):
            conn.execute(
                "INSERT INTO t_user (uid, name) VALUES (?, ?)", (uid, f"user-{uid}")
            )
    yield rt
    rt.close()


@pytest.mark.concurrency
class TestMetadataStress:
    def test_readers_never_see_torn_snapshots(self, runtime):
        errors: list[BaseException] = []
        torn: list[str] = []
        stop = threading.Event()
        statements = [0]

        def reader(seed: int) -> None:
            rng = random.Random(seed)
            try:
                while not stop.is_set():
                    uid = rng.randint(1, USERS)
                    result = runtime.engine.execute(
                        "SELECT * FROM t_user WHERE uid = ?", (uid,), force_trace=True
                    )
                    rows = result.fetchall()
                    if not rows or rows[0][0] != uid:
                        torn.append(f"wrong rows for uid={uid}: {rows}")
                        return
                    versions = {
                        span.attributes["metadata_version"]
                        for span in result.trace.spans
                        if "metadata_version" in span.attributes
                    }
                    if len(versions) != 1:
                        torn.append(f"statement saw {len(versions)} versions: {versions}")
                        return
                    statements[0] += 1
            except BaseException as exc:  # noqa: BLE001 - reported via `errors`
                errors.append(exc)

        def rule_writer() -> None:
            conn = ShardingDataSource(runtime).get_connection()
            try:
                for _ in range(WRITER_ROUNDS):
                    conn.execute("REGISTER RESOURCE w0")
                    conn.execute(
                        "CREATE SHARDING TABLE RULE t_hot (RESOURCES(w0), "
                        "SHARDING_COLUMN=hid, TYPE=mod, PROPERTIES('sharding-count'=1))"
                    )
                    conn.execute("DROP SHARDING TABLE RULE t_hot")
                    conn.execute("UNREGISTER RESOURCE w0")
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)
            finally:
                stop.set()
                conn.close()

        def variable_writer() -> None:
            try:
                threshold = 100
                while not stop.is_set():
                    threshold = 300 - threshold  # 100 <-> 200
                    runtime.set_variable("slow_query_threshold_ms", threshold)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(seed,)) for seed in range(READERS)
        ]
        threads.append(threading.Thread(target=rule_writer))
        threads.append(threading.Thread(target=variable_writer))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)

        assert not errors, errors[0]
        assert not torn, torn[0]
        assert statements[0] > 0, "readers never completed a statement"
        # 4 metadata mutations per writer round, plus the variable churn
        assert runtime.metadata.version > WRITER_ROUNDS * 4

    def test_post_change_routing_follows_latest_rule(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("REGISTER RESOURCE w0")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_hot (RESOURCES(w0), "
            "SHARDING_COLUMN=hid, TYPE=mod, PROPERTIES('sharding-count'=1))"
        )
        conn.execute("CREATE TABLE t_hot (hid INT PRIMARY KEY, note VARCHAR(32))")
        conn.execute("INSERT INTO t_hot (hid, note) VALUES (?, ?)", (7, "after"))
        targets = dict(runtime.preview("SELECT * FROM t_hot WHERE hid = 7"))
        assert list(targets) == ["w0"]
        rows = conn.execute("SELECT note FROM t_hot WHERE hid = 7").fetchall()
        assert rows == [("after",)]
        conn.close()
