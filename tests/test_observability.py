"""Observability suite: tracing, metrics registry, slow-query analytics.

Covers the span-tree shapes the engine emits per route type, histogram
percentile math against known distributions, slow-log eviction/sampling,
retry-annotated spans under injected faults, DistSQL surfaces, the
diagnostics invariants on ``EngineResult``, and the overhead guard
(tracer disabled → zero spans and no trace allocations).
"""

import threading
import tracemalloc

import pytest

from repro.adaptors import ShardingRuntime
from repro.distsql import execute_distsql
from repro.engine import ResiliencePolicy, SQLEngine
from repro.observability import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    Observability,
    SlowQueryLog,
    Tracer,
    like_to_matcher,
)
from repro.storage import DataSource, FaultInjector, LatencyModel


@pytest.fixture
def observed_engine(seeded_engine):
    """The conftest paper engine with observability attached, tracing on."""
    obs = Observability()
    obs.tracer.enabled = True
    seeded_engine.attach_observability(obs)
    return seeded_engine, obs


def span_names(trace, parent):
    return [s.name for s in trace.children_of(parent)]


# ---------------------------------------------------------------------------
# Span trees
# ---------------------------------------------------------------------------


class TestSpanTrees:
    def test_unicast_select_tree(self, observed_engine):
        engine, obs = observed_engine
        result = engine.execute("SELECT name FROM t_user WHERE uid = 1")
        assert result.fetchall() == [("alice",)]
        trace = result.trace
        assert trace is not None
        assert trace.root.name == "statement"
        stages = span_names(trace, trace.root)
        assert stages == ["parse", "route", "rewrite", "execute", "merge"]
        (execute_span,) = trace.find_spans("execute")
        storage = trace.children_of(execute_span)
        assert len(storage) == 1
        span = storage[0]
        assert span.name == "storage"
        assert span.attributes["data_source"] == "ds1"
        assert span.attributes["mode"] == "memory_strictly"
        assert span.attributes["rows"] == 1
        assert "t_user_h1" in span.attributes["sql"]
        assert trace.root.attributes["route_type"] == "standard"
        assert trace.root.attributes["units"] == 1

    def test_broadcast_write_tree(self, observed_engine):
        engine, obs = observed_engine
        result = engine.execute("INSERT INTO t_dict (k, v) VALUES ('a', '1')")
        trace = result.trace
        assert trace.root.attributes["route_type"] == "broadcast"
        (execute_span,) = trace.find_spans("execute")
        storage = trace.children_of(execute_span)
        assert sorted(s.attributes["data_source"] for s in storage) == ["ds0", "ds1"]
        assert all(s.finished for s in storage)

    def test_broadcast_read_routes_to_one_source(self, observed_engine):
        engine, obs = observed_engine
        engine.execute("INSERT INTO t_dict (k, v) VALUES ('a', '1')")
        trace = engine.execute("SELECT k, v FROM t_dict").trace
        assert trace.root.attributes["route_type"] == "unicast"
        assert len(trace.find_spans("storage")) == 1

    def test_multi_shard_select_tree(self, observed_engine):
        engine, obs = observed_engine
        result = engine.execute("SELECT uid FROM t_user")
        assert len(result.fetchall()) == 4
        trace = result.trace
        storage = trace.find_spans("storage")
        assert sorted(s.attributes["data_source"] for s in storage) == ["ds0", "ds1"]
        # both shards contributed rows and report them on the span
        assert sum(s.attributes["rows"] for s in storage) == 4

    def test_update_has_no_merge_span(self, observed_engine):
        engine, obs = observed_engine
        result = engine.execute("UPDATE t_user SET age = 31 WHERE uid = 1")
        trace = result.trace
        assert span_names(trace, trace.root) == ["parse", "route", "rewrite", "execute"]
        (span,) = trace.find_spans("storage")
        assert span.attributes["rows"] == 1

    def test_span_ids_are_deterministic(self, fleet, paper_rule):
        def ids():
            sources = {
                "ds0": DataSource("ds0"), "ds1": DataSource("ds1"),
            }
            for i, ds in enumerate(sources.values()):
                ds.execute(
                    f"CREATE TABLE t_user_h{i} "
                    "(uid INT PRIMARY KEY, name VARCHAR(64), age INT)"
                )
            engine = SQLEngine(sources, paper_rule)
            obs = Observability()
            obs.tracer.enabled = True
            engine.attach_observability(obs)
            trace = engine.execute("SELECT * FROM t_user WHERE uid = 1").trace
            engine.close()
            return [(s.span_id, s.parent_id, s.name) for s in trace.spans]

        assert ids() == ids()

    def test_simulated_time_attributed_to_storage_span(self, paper_rule):
        latency = LatencyModel(base=2e-3, commit_io=3e-3)
        sources = {
            "ds0": DataSource("ds0", latency=latency),
            "ds1": DataSource("ds1", latency=latency),
        }
        for i, ds in enumerate(sources.values()):
            ds.execute(
                f"CREATE TABLE t_user_h{i} (uid INT PRIMARY KEY, name VARCHAR(64), age INT)"
            )
        engine = SQLEngine(sources, paper_rule)
        obs = Observability()
        obs.tracer.enabled = True
        engine.attach_observability(obs)
        try:
            engine.execute("INSERT INTO t_user (uid, name, age) VALUES (1, 'a', 1)")
            trace = engine.execute("SELECT * FROM t_user WHERE uid = 1").trace
        finally:
            engine.close()
        (span,) = trace.find_spans("storage")
        # the latency model's priced sleep lands on the storage span...
        assert span.simulated >= latency.base
        assert span.wall >= span.simulated
        # ...and not on the pipeline-stage spans
        (parse_span,) = trace.find_spans("parse")
        assert parse_span.simulated == 0.0
        assert trace.simulated == pytest.approx(span.simulated)

    def test_render_contains_tree_connectors(self, observed_engine):
        engine, obs = observed_engine
        trace = engine.execute("SELECT * FROM t_user WHERE uid = 1").trace
        text = trace.render()
        assert "statement" in text.splitlines()[1]
        assert "├─" in text and "└─" in text
        assert "wall=" in text and "sim=" in text


# ---------------------------------------------------------------------------
# Histograms and registry
# ---------------------------------------------------------------------------


class TestHistogramMath:
    def test_percentiles_of_known_distribution(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(0.001, 0.01, 0.1, 1.0))
        for _ in range(90):
            hist.observe(0.0005)
        for _ in range(10):
            hist.observe(0.005)
        stats = hist.stats()
        assert stats["count"] == 100
        assert stats["sum"] == pytest.approx(90 * 0.0005 + 10 * 0.005)
        assert stats["avg"] == pytest.approx(stats["sum"] / 100)
        # interpolation inside the bucket that holds the rank:
        # p50 rank = 50 of 90 observations in (0, 0.001]
        assert stats["p50"] == pytest.approx(50 / 90 * 0.001)
        # p95 rank = 95: 90 below, 5 of 10 into (0.001, 0.01]
        assert stats["p95"] == pytest.approx(0.001 + 0.5 * 0.009)
        assert stats["p99"] == pytest.approx(0.001 + 0.9 * 0.009)

    def test_overflow_bucket_capped_by_observed_max(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=(0.001, 1.0))
        hist.observe(5.0)
        assert hist.percentile(100) == pytest.approx(5.0)
        assert hist.percentile(50) <= 5.0

    def test_labelled_children_are_independent(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", labelnames=("stage",))
        hist.observe(0.5, stage="route")
        hist.observe(0.001, stage="parse")
        assert hist.count(stage="route") == 1
        assert hist.count(stage="parse") == 1
        assert hist.label_sets() == [{"stage": "parse"}, {"stage": "route"}]

    def test_default_buckets_cover_microseconds_to_seconds(self):
        assert DEFAULT_LATENCY_BUCKETS[0] <= 1e-5
        assert DEFAULT_LATENCY_BUCKETS[-1] >= 1.0


class TestMetricsRegistry:
    def test_counter_gauge_roundtrip(self):
        reg = MetricsRegistry()
        counter = reg.counter("c_total", labelnames=("source",))
        counter.inc(source="ds0")
        counter.inc(2, source="ds0")
        assert counter.value(source="ds0") == 3
        gauge = reg.gauge("g")
        gauge.set_function(lambda: 7.0)
        assert gauge.value() == 7.0

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(ValueError):
            reg.gauge("m")

    def test_like_matcher(self):
        assert like_to_matcher("engine_%")("engine_stage_seconds")
        assert not like_to_matcher("engine_%")("storage_queries_total")
        assert like_to_matcher("%_total")("storage_queries_total")
        assert like_to_matcher("p__l_%")("pool_in_use")
        assert like_to_matcher("")("anything")

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", help="latency", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = reg.render_prometheus()
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text

    def test_collector_read_through(self, observed_engine):
        engine, obs = observed_engine
        engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        families = {name: samples for name, _, _, samples in obs.registry.collect()}
        # the executor's ad-hoc counters surface via the registry collector
        assert families["executor_statements_total"][0][1] >= 1
        assert families["executor_retries_total"][0][1] == 0


# ---------------------------------------------------------------------------
# Statement-level metrics (sampling correctness)
# ---------------------------------------------------------------------------


class TestStatementMetrics:
    def test_counters_exact_and_histograms_weighted(self, observed_engine):
        engine, obs = observed_engine
        obs.tracer.enabled = False  # metrics only
        n = 200  # past the sampling warmup; multiple of the sample period
        for i in range(n):
            engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        statements = obs.registry.get("engine_statements_total")
        assert statements.value(route_type="standard") == n
        queries = obs.registry.get("storage_queries_total")
        assert queries.value(source="ds1") == n
        # weighted sampling keeps histogram counts equal to the population
        # for a deterministic single-threaded run; after the first
        # execution compiles a plan, hits record the plan_cache_hit stage
        # instead of parse/route/rewrite
        hist = obs.registry.get("engine_stage_seconds")
        assert hist.count(stage="route") + hist.count(stage="plan_cache_hit") == n
        assert hist.count(stage="plan_cache_hit") >= n - 1
        assert hist.count(stage="execute") == n
        profile = obs.stage_profile()
        assert "plan_cache_hit" in profile
        assert list(profile)[:2] == ["parse", "route"]
        assert profile["execute"]["p95"] >= profile["execute"]["p50"] > 0

    def test_exact_mode_when_sampling_disabled(self, observed_engine):
        engine, obs = observed_engine
        obs.tracer.enabled = False
        obs.stage_sample_every = 1
        for _ in range(10):
            engine.execute("SELECT * FROM t_user WHERE uid = 2").fetchall()
        hist = obs.registry.get("engine_stage_seconds")
        # first execution parses + compiles; the other 9 are plan hits
        assert hist.count(stage="parse") >= 1
        assert hist.count(stage="parse") + hist.count(stage="plan_cache_hit") >= 10

    def test_error_statements_counted(self, observed_engine):
        engine, obs = observed_engine
        with pytest.raises(Exception):
            engine.execute("SELECT * FROM no_such_table_anywhere")
        assert obs.registry.get("engine_statement_errors_total").value() == 1

    def test_pool_wait_histogram_materialized(self, observed_engine):
        engine, obs = observed_engine
        engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        hist = obs.registry.get("pool_checkout_wait_seconds")
        assert hist.count(source="ds1") >= 1

    def test_thread_safety_of_counters(self, observed_engine):
        engine, obs = observed_engine
        obs.tracer.enabled = False
        per_thread, threads = 50, 4

        def worker():
            for _ in range(per_thread):
                engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()

        pool = [threading.Thread(target=worker) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        statements = obs.registry.get("engine_statements_total")
        assert statements.value(route_type="standard") == per_thread * threads


# ---------------------------------------------------------------------------
# Slow-query log
# ---------------------------------------------------------------------------


def make_trace(tracer):
    trace = tracer.start_trace("SELECT 1")
    trace.start_span("parse").finish()
    return trace.finish()


class TestSlowQueryLog:
    def test_ring_buffer_eviction(self):
        tracer = Tracer(enabled=True)
        log = SlowQueryLog(threshold=0.0, capacity=3)
        traces = [make_trace(tracer) for _ in range(5)]
        for trace in traces:
            assert log.offer(trace)
        entries = log.entries()
        assert len(entries) == 3
        assert log.recorded == 5
        # newest first; the two oldest were evicted
        assert [e.trace_id for e in entries] == [
            traces[4].trace_id, traces[3].trace_id, traces[2].trace_id,
        ]
        assert all(e.kind == "slow" for e in entries)

    def test_threshold_filters_fast_traces(self):
        tracer = Tracer(enabled=True)
        log = SlowQueryLog(threshold=60.0)
        assert not log.offer(make_trace(tracer))
        assert log.entries() == []

    def test_sampling_records_every_nth_fast_trace(self):
        tracer = Tracer(enabled=True)
        log = SlowQueryLog(threshold=60.0, sample_every=3)
        recorded = [log.offer(make_trace(tracer)) for _ in range(9)]
        assert recorded == [False, False, True] * 3
        assert all(e.kind == "sampled" for e in log.entries())

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlowQueryLog(capacity=0)


# ---------------------------------------------------------------------------
# Chaos: retries annotated on spans
# ---------------------------------------------------------------------------


class TestChaosSpans:
    def test_retry_event_on_storage_span(self, observed_engine):
        engine, obs = observed_engine
        engine.executor.enable_resilience(ResiliencePolicy(max_retries=3))
        injector = FaultInjector(seed=1)
        engine.data_sources["ds1"].set_fault_injector(injector)
        injector.fail_once("ds1")  # next statement on ds1 fails transiently
        result = engine.execute("SELECT name FROM t_user WHERE uid = 1")
        assert result.fetchall() == [("alice",)]
        (span,) = result.trace.find_spans("storage")
        assert span.attributes["retries"] == 1
        events = [name for name, _ in span.events]
        assert events == ["retry"]
        assert span.error is None  # the retry succeeded

    def test_failed_statement_finishes_span_with_error(self, observed_engine):
        engine, obs = observed_engine
        injector = FaultInjector(seed=1)
        engine.data_sources["ds1"].set_fault_injector(injector)
        injector.fail_once("ds1")  # no resilience policy: error surfaces
        with pytest.raises(Exception):
            engine.execute("SELECT name FROM t_user WHERE uid = 1")
        trace = obs.tracer.recent()[0]
        assert trace.error is not None
        (span,) = trace.find_spans("storage")
        assert span.error is not None
        assert span.finished


# ---------------------------------------------------------------------------
# Diagnostics invariants on EngineResult
# ---------------------------------------------------------------------------


class TestDiagnostics:
    def test_unicast_diagnostics(self, seeded_engine):
        result = seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1")
        assert result.route_type == "standard"
        assert list(result.modes) == ["ds1"]
        result.fetchall()
        assert result.merger_kind

    def test_update_sets_merger_kind(self, seeded_engine):
        result = seeded_engine.execute("UPDATE t_user SET age = 1 WHERE uid = 1")
        assert result.merger_kind == "update"
        assert result.route_type == "standard"

    def test_broadcast_diagnostics(self, seeded_engine):
        result = seeded_engine.execute("INSERT INTO t_dict (k, v) VALUES ('x', 'y')")
        assert result.route_type == "broadcast"
        assert sorted(result.modes) == ["ds0", "ds1"]
        assert result.merger_kind == "update"

    def test_degraded_read_drops_skipped_modes(self, seeded_engine):
        engine = seeded_engine
        engine.executor.enable_resilience(ResiliencePolicy(allow_partial_broadcast=True))
        engine.executor.set_health_check(lambda name: name == "ds0")
        result = engine.execute("SELECT * FROM t_user")
        assert result.partial_results
        assert result.skipped_sources == ["ds1"]
        # modes only lists sources that actually contributed results
        assert list(result.modes) == ["ds0"]
        assert result.route_type == "broadcast"


# ---------------------------------------------------------------------------
# Overhead guard
# ---------------------------------------------------------------------------


class TestOverheadGuard:
    def test_disabled_tracer_allocates_no_spans(self, observed_engine):
        engine, obs = observed_engine
        obs.tracer.enabled = False
        before = obs.tracer.span_count
        tracemalloc.start()
        for _ in range(30):
            engine.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
        snapshot = tracemalloc.take_snapshot()
        tracemalloc.stop()
        assert obs.tracer.span_count == before
        assert list(obs.tracer.recent()) == []
        trace_allocs = [
            stat for stat in snapshot.statistics("filename")
            if stat.traceback[0].filename.endswith("observability/trace.py")
        ]
        assert trace_allocs == []

    def test_engine_without_observability_pays_nothing(self, seeded_engine):
        assert seeded_engine.observability is None
        result = seeded_engine.execute("SELECT * FROM t_user WHERE uid = 1")
        assert result.trace is None


# ---------------------------------------------------------------------------
# DistSQL surfaces
# ---------------------------------------------------------------------------


@pytest.fixture
def sharded_runtime():
    rt = ShardingRuntime()
    execute_distsql("REGISTER RESOURCE ds0, ds1", rt)
    execute_distsql(
        "CREATE SHARDING TABLE RULE t_order (RESOURCES(ds0, ds1), "
        "SHARDING_COLUMN=order_id, TYPE=hash_mod, PROPERTIES('sharding-count'=4))",
        rt,
    )
    rt.engine.execute("CREATE TABLE t_order (order_id INT, user_id INT)")
    for i in range(8):
        rt.engine.execute(f"INSERT INTO t_order (order_id, user_id) VALUES ({i}, {i})")
    yield rt
    rt.close()


class TestDistSQLSurfaces:
    def test_trace_statement_prints_span_tree(self, sharded_runtime):
        result = execute_distsql("TRACE SELECT * FROM t_order", sharded_runtime)
        assert result.columns == ["span", "wall_ms", "simulated_ms", "detail"]
        labels = [row[0] for row in result.rows]
        assert labels[0] == "statement"
        assert any("storage" in label for label in labels)
        # 2-source / 4-shard fixture: one storage span per execution unit
        assert sum("storage" in label for label in labels) == 4
        assert result.message.startswith("trace #")
        assert "route=broadcast" in result.message

    def test_trace_leaves_tracer_disabled(self, sharded_runtime):
        execute_distsql("TRACE SELECT * FROM t_order WHERE order_id = 1", sharded_runtime)
        assert not sharded_runtime.observability.tracer.enabled

    def test_show_traces_after_enabling(self, sharded_runtime):
        empty = execute_distsql("SHOW TRACES", sharded_runtime)
        assert empty.rows == []
        assert "tracing is disabled" in empty.message
        execute_distsql("SET VARIABLE tracing = on", sharded_runtime)
        sharded_runtime.engine.execute("SELECT * FROM t_order WHERE order_id = 1").fetchall()
        result = execute_distsql("SHOW TRACES", sharded_runtime)
        assert result.columns[:2] == ["trace_id", "sql"]
        assert len(result.rows) == 1
        assert "t_order" in result.rows[0][1]

    def test_show_slow_queries(self, sharded_runtime):
        execute_distsql("SET VARIABLE tracing = on", sharded_runtime)
        execute_distsql("SET VARIABLE slow_query_threshold_ms = 0", sharded_runtime)
        sharded_runtime.engine.execute("SELECT * FROM t_order").fetchall()
        result = execute_distsql("SHOW SLOW QUERIES", sharded_runtime)
        assert len(result.rows) == 1
        row = dict(zip(result.columns, result.rows[0]))
        assert row["kind"] == "slow"
        assert row["route_type"] == "broadcast"

    def test_show_metrics_like_filter(self, sharded_runtime):
        sharded_runtime.engine.execute("SELECT * FROM t_order WHERE order_id = 1").fetchall()
        everything = execute_distsql("SHOW METRICS", sharded_runtime)
        names = {row[0] for row in everything.rows}
        assert "engine_statements_total" in names
        assert "engine_stage_seconds" in names
        filtered = execute_distsql("SHOW METRICS LIKE 'pool_%'", sharded_runtime)
        assert {row[0] for row in filtered.rows} <= {
            "pool_checkout_wait_seconds", "pool_in_use", "pool_idle",
        }

    def test_show_execution_metrics_is_alias(self, sharded_runtime):
        sharded_runtime.engine.execute("SELECT * FROM t_order WHERE order_id = 1").fetchall()
        alias = execute_distsql("SHOW EXECUTION METRICS", sharded_runtime)
        assert "alias of SHOW METRICS" in alias.message
        alias_counts = dict(alias.rows)
        full = execute_distsql("SHOW METRICS LIKE 'executor_%'", sharded_runtime)
        registry_counts = {
            row[0]: row[3] for row in full.rows if not row[1] or row[1] == "-"
        }
        # one source of truth: the alias and the registry agree
        assert registry_counts["executor_statements_total"] == alias_counts["statements"]

    def test_set_variable_tracing_roundtrip(self, sharded_runtime):
        execute_distsql("SET VARIABLE tracing = on", sharded_runtime)
        assert sharded_runtime.variables["tracing"] == "ON"
        assert sharded_runtime.observability.tracer.enabled
        execute_distsql("SET VARIABLE tracing = off", sharded_runtime)
        assert not sharded_runtime.observability.tracer.enabled

    def test_prometheus_export_has_engine_families(self, sharded_runtime):
        sharded_runtime.engine.execute("SELECT * FROM t_order WHERE order_id = 1").fetchall()
        text = sharded_runtime.observability.registry.render_prometheus()
        assert "# TYPE engine_stage_seconds histogram" in text
        assert 'engine_stage_seconds_bucket{stage="route"' in text
        assert "# TYPE storage_queries_total counter" in text
        assert "executor_statements_total" in text


# ---------------------------------------------------------------------------
# Bench --profile
# ---------------------------------------------------------------------------


class TestBenchProfile:
    def test_profile_writes_report(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "profile.json"
        rc = main([
            "--system", "ssj", "--scenario", "point_select",
            "--table-size", "200", "--threads", "2",
            "--duration", "0.3", "--warmup", "0.05",
            "--profile", "--profile-output", str(out),
        ])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "Stage" in captured and "p99(ms)" in captured
        import json

        payload = json.loads(out.read_text())
        assert payload["scenario"] == "point_select"
        assert payload["transactions"] > 0
        assert "execute" in payload["stages"]
        assert payload["stages"]["execute"]["count"] > 0
        assert payload["per_source_queries"]
