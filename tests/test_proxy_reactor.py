"""The session-multiplexing proxy reactor.

Drives the :class:`ShardingProxyServer` the way the paper's experiments
drive ShardingSphere-Proxy: many concurrent clients against a small,
bounded thread budget. Covers the concurrency smoke (hundreds of mixed
sessions, read-your-writes through laggy replicas, zero errors), the
thread-count envelope (1k sessions on ``1 + workers`` threads),
queue-based backpressure at saturation, lifecycle hygiene, and the
hardened client's behaviour against wedged or half-closed peers.
"""

import socket
import threading
import time

import pytest

from repro.adaptors import ShardingProxyServer, ShardingRuntime
from repro.adaptors.proxy import default_worker_count
from repro.exceptions import ExecutionError, ProtocolError, ServerBusyError
from repro.protocol import PacketType, ProxyClient, encode
from repro.protocol.message import read_packet, send_packet
from repro.storage import DataSource, LatencyModel

from tests.test_sessions import make_replicated_sharded_runtime


def wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def proxy_thread_count() -> int:
    return sum(1 for t in threading.enumerate()
               if t.is_alive() and t.name.startswith("ss-proxy"))


@pytest.fixture
def simple_runtime():
    rt = ShardingRuntime({"ds0": DataSource("ds0")})
    rt.engine.execute("CREATE TABLE t_one (uid INT PRIMARY KEY, v INT)")
    rt.engine.execute("INSERT INTO t_one (uid, v) VALUES (1, 7)")
    yield rt
    rt.close()


# ---------------------------------------------------------------------------
# Concurrency smoke: the acceptance workload
# ---------------------------------------------------------------------------


class TestConcurrencySmoke:
    def test_200_clients_read_their_writes_through_lag(self):
        """200 concurrent sessions spread over 4 replicated shard groups
        (30s replica lag). Each inserts its own row then reads it back:
        only per-session causal tokens — resumed by whichever pool
        worker serves the request — make the read hit the primary."""
        runtime, _groups = make_replicated_sharded_runtime()
        errors: list[BaseException] = []
        clients = 200

        def one_session(i):
            try:
                with ProxyClient("127.0.0.1", server.port) as client:
                    client.execute(
                        f"INSERT INTO t_user (uid, v) VALUES ({i}, {i + 1000})")
                    rows = client.execute(
                        f"SELECT v FROM t_user WHERE uid = {i}").fetchall()
                    assert rows == [(i + 1000,)], rows
            except BaseException as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)

        with ShardingProxyServer(runtime) as server:
            threads = [threading.Thread(target=one_session, args=(i,))
                       for i in range(clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            stats = server.stats()
            assert not errors, errors[:3]
            assert stats["errors"] == 0
            assert stats["backpressure_rejections"] == 0
            assert stats["sessions_served"] >= clients
            # the whole burst ran on the bounded pool
            assert proxy_thread_count() == 1 + server.workers
        runtime.close()

    def test_1000_sessions_on_a_bounded_thread_pool(self, simple_runtime):
        """1k concurrently-open sessions are served by 1 + workers
        threads, where the pool honours the 2x-CPU envelope."""
        with ShardingProxyServer(simple_runtime) as server:
            assert server.workers == default_worker_count()
            clients = [ProxyClient("127.0.0.1", server.port)
                       for _ in range(1000)]
            try:
                assert server.active_sessions == 1000
                # thread count is a function of the pool, not the
                # session count: the whole point of the reactor
                assert proxy_thread_count() == 1 + server.workers
                errors: list[BaseException] = []

                def drive(chunk):
                    try:
                        for client in chunk:
                            rows = client.execute(
                                "SELECT v FROM t_one WHERE uid = 1").fetchall()
                            assert rows == [(7,)]
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)

                drivers = [threading.Thread(target=drive,
                                            args=(clients[i::20],))
                           for i in range(20)]
                for t in drivers:
                    t.start()
                for t in drivers:
                    t.join(timeout=120)
                assert not errors, errors[:3]
                assert server.stats()["errors"] == 0
                assert proxy_thread_count() == 1 + server.workers
            finally:
                for client in clients:
                    client.close()
            assert wait_until(lambda: server.active_sessions == 0)


# ---------------------------------------------------------------------------
# Backpressure: queue-based load leveling
# ---------------------------------------------------------------------------


class TestBackpressure:
    def test_saturation_sheds_load_and_recovers(self):
        """With slow statements, 2 workers and a 2-deep admission queue,
        a 10-client burst must shed the overflow as ServerBusyError —
        and keep serving normally afterwards."""
        slow = LatencyModel(base=0.15, index_io=0.0, row_cost=0.0,
                            commit_io=0.0, scale=1.0)
        runtime = ShardingRuntime({"ds0": DataSource("ds0", latency=slow)})
        runtime.engine.execute("CREATE TABLE t_one (uid INT PRIMARY KEY, v INT)")
        outcomes: list[str] = []
        lock = threading.Lock()

        def one_request(i):
            try:
                with ProxyClient("127.0.0.1", server.port, timeout=30.0) as c:
                    c.execute(f"INSERT INTO t_one (uid, v) VALUES ({i}, 0)")
                outcome = "ok"
            except ServerBusyError:
                outcome = "busy"
            with lock:
                outcomes.append(outcome)

        with ShardingProxyServer(runtime, workers=2, max_queue=2) as server:
            threads = [threading.Thread(target=one_request, args=(i,))
                       for i in range(10)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert len(outcomes) == 10
            assert outcomes.count("busy") >= 1
            assert outcomes.count("ok") >= 2  # workers kept draining
            assert server.stats()["backpressure_rejections"] == outcomes.count("busy")
            # the server recovered: a fresh client is served normally
            with ProxyClient("127.0.0.1", server.port) as client:
                assert client.execute("SELECT COUNT(*) FROM t_one").fetchall() \
                    == [(outcomes.count("ok"),)]
        runtime.close()

    def test_busy_error_does_not_break_the_client(self, simple_runtime):
        """Backpressure is an orderly response: the same client can
        retry on the same socket (framing was never disturbed)."""
        with ShardingProxyServer(simple_runtime, workers=2) as server:
            with ProxyClient("127.0.0.1", server.port) as client:
                # provoke the *pipeline* limit by poking the server's
                # reject path directly is reactor-internal; instead
                # check the wire contract: an ERROR with backpressure
                # set maps to ServerBusyError and leaves the client OK
                session = next(iter(server._sessions))
                server._post(("output", session, encode(
                    PacketType.ERROR,
                    {"message": "server busy: test; retry",
                     "type": "ServerBusyError", "backpressure": True})))
                with pytest.raises(ServerBusyError):
                    client.execute("SELECT v FROM t_one WHERE uid = 1")
                # next request resynchronizes? No: the injected packet
                # consumed nothing, so the *real* answer to the above
                # query is still in flight — drain it, then reuse.
                packet_type, _body = read_packet(client._sock)
                assert packet_type is PacketType.RESULT_HEADER
                while read_packet(client._sock)[0] is not PacketType.RESULT_END:
                    pass
                rows = client.execute(
                    "SELECT v FROM t_one WHERE uid = 1").fetchall()
                assert rows == [(7,)]


# ---------------------------------------------------------------------------
# Lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_sessions_are_reaped_on_disconnect(self, simple_runtime):
        with ShardingProxyServer(simple_runtime) as server:
            a = ProxyClient("127.0.0.1", server.port)
            b = ProxyClient("127.0.0.1", server.port)
            assert wait_until(lambda: server.active_sessions == 2)
            a.close()  # polite QUIT
            assert wait_until(lambda: server.active_sessions == 1)
            b._sock.close()  # impolite: peer vanishes mid-session
            assert wait_until(lambda: server.active_sessions == 0)
            assert server.sessions_served == 2
            # runtime-side sessions were unregistered too
            assert wait_until(lambda: len(simple_runtime.sessions) == 0)

    def test_stop_with_connected_clients_is_clean(self, simple_runtime):
        server = ShardingProxyServer(simple_runtime).start()
        clients = [ProxyClient("127.0.0.1", server.port) for _ in range(5)]
        server.stop()
        assert wait_until(lambda: proxy_thread_count() == 0)
        for client in clients:
            with pytest.raises(ProtocolError):
                client.execute("SELECT 1")
            client.close()
        server.stop()  # idempotent

    def test_restart_on_same_object(self, simple_runtime):
        server = ShardingProxyServer(simple_runtime)
        server.start()
        port1 = server.port
        with ProxyClient("127.0.0.1", port1) as client:
            client.execute("SELECT v FROM t_one WHERE uid = 1")
        server.stop()
        server.start()
        with ProxyClient("127.0.0.1", server.port) as client:
            assert client.execute(
                "SELECT v FROM t_one WHERE uid = 1").fetchall() == [(7,)]
        server.stop()

    def test_proxy_metrics_exported(self, simple_runtime):
        with ShardingProxyServer(simple_runtime) as server:
            with ProxyClient("127.0.0.1", server.port) as client:
                client.execute("SELECT v FROM t_one WHERE uid = 1")
            names = {family[0] for family in server._metric_families()}
            assert {"proxy_sessions", "proxy_requests_total",
                    "proxy_backpressure_total", "proxy_workers"} <= names
            text = simple_runtime.observability.registry.render_prometheus()
            assert "proxy_requests_total" in text
        # unregistered on stop
        text = simple_runtime.observability.registry.render_prometheus()
        assert "proxy_requests_total" not in text


# ---------------------------------------------------------------------------
# Reactor framing + SHOW SESSIONS
# ---------------------------------------------------------------------------


class TestReactorFraming:
    def test_trickled_bytes_are_reassembled(self, simple_runtime):
        """The reactor frames incrementally: a client dribbling one byte
        at a time still gets a well-formed response."""
        with ShardingProxyServer(simple_runtime) as server:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=10) as sock:
                sock.settimeout(10)
                for byte in encode(PacketType.HANDSHAKE, {"client": "drip"}):
                    sock.sendall(bytes([byte]))
                packet_type, body = read_packet(sock)
                assert packet_type is PacketType.HANDSHAKE_OK
                assert body["session_id"]
                query = encode(PacketType.QUERY,
                               {"sql": "SELECT v FROM t_one WHERE uid = 1",
                                "params": []})
                sock.sendall(query[:3])
                time.sleep(0.05)
                sock.sendall(query[3:])
                assert read_packet(sock)[0] is PacketType.RESULT_HEADER

    def test_garbage_frame_gets_error_then_close(self, simple_runtime):
        with ShardingProxyServer(simple_runtime) as server:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=10) as sock:
                sock.settimeout(10)
                sock.sendall(b"\xff\xff\xff\xff\xffGET / HTTP/1.1")
                packet_type, body = read_packet(sock)
                assert packet_type is PacketType.ERROR
                assert body["type"] == "ProtocolError"
                assert sock.recv(1) == b""  # server hung up
            assert wait_until(lambda: server.active_sessions == 0)

    def test_show_sessions_over_the_proxy(self, simple_runtime):
        with ShardingProxyServer(simple_runtime) as server:
            with ProxyClient("127.0.0.1", server.port) as a, \
                    ProxyClient("127.0.0.1", server.port) as b:
                a.execute("SELECT v FROM t_one WHERE uid = 1")
                result = b.execute("SHOW SESSIONS")
                kinds = [row[result.columns.index("kind")]
                         for row in result.rows]
                assert kinds.count("proxy") >= 2
                ids = {row[0] for row in result.rows}
                assert a.server_info["session_id"] in ids
                assert b.server_info["session_id"] in ids


# ---------------------------------------------------------------------------
# Client hardening against bad peers
# ---------------------------------------------------------------------------


@pytest.fixture
def wedged_server():
    """Accepts connections, optionally answers the handshake, then goes
    silent forever — the half-closed/wedged peer the client must not
    hang on."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind(("127.0.0.1", 0))
    listener.listen(8)
    port = listener.getsockname()[1]
    stop = threading.Event()
    held: list[socket.socket] = []

    def serve(answer_handshake):
        while not stop.is_set():
            try:
                sock, _ = listener.accept()
            except OSError:
                return
            held.append(sock)
            if answer_handshake:
                try:
                    read_packet(sock)
                    send_packet(sock, PacketType.HANDSHAKE_OK, {"server": "wedge"})
                except (OSError, ProtocolError):
                    pass
            # ...and never speak again

    state = {"port": port, "listener": listener, "stop": stop,
             "held": held, "serve": serve, "thread": None}

    def start(answer_handshake):
        state["thread"] = threading.Thread(
            target=serve, args=(answer_handshake,), daemon=True)
        state["thread"].start()
        return port

    state["start"] = start
    yield state
    stop.set()
    listener.close()
    for sock in held:
        try:
            sock.close()
        except OSError:
            pass
    if state["thread"] is not None:
        state["thread"].join(timeout=5)


class TestClientHardening:
    def test_handshake_timeout_raises_not_hangs(self, wedged_server):
        port = wedged_server["start"](False)
        started = time.monotonic()
        with pytest.raises(ProtocolError, match="handshake"):
            ProxyClient("127.0.0.1", port, timeout=0.3)
        assert time.monotonic() - started < 5

    def test_request_timeout_poisons_the_client(self, wedged_server):
        port = wedged_server["start"](True)
        client = ProxyClient("127.0.0.1", port, timeout=0.3)
        with pytest.raises(ProtocolError, match="timed out"):
            client.execute("SELECT 1")
        # the stream position is unknowable: the client refuses reuse
        with pytest.raises(ProtocolError, match="broken"):
            client.execute("SELECT 1")
        client.close()

    def test_peer_hangup_mid_request(self, simple_runtime):
        with ShardingProxyServer(simple_runtime) as server:
            client = ProxyClient("127.0.0.1", server.port, timeout=2.0)
            server.stop()
            with pytest.raises(ProtocolError):
                client.execute("SELECT v FROM t_one WHERE uid = 1")
            client.close()

    def test_server_error_does_not_poison(self, simple_runtime):
        """Semantic errors keep framing intact: the client stays live."""
        with ShardingProxyServer(simple_runtime) as server:
            with ProxyClient("127.0.0.1", server.port) as client:
                with pytest.raises(ExecutionError):
                    client.execute("SELECT v FROM t_missing WHERE uid = 1")
                assert client.execute(
                    "SELECT v FROM t_one WHERE uid = 1").fetchall() == [(7,)]
            assert server.stats()["errors"] == 1
