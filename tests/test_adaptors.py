"""Tests for the JDBC and Proxy adaptors plus the wire protocol."""

import socket
import threading

import pytest

from repro.adaptors import (
    ShardingConnection,
    ShardingDataSource,
    ShardingProxyServer,
    ShardingRuntime,
)
from repro.exceptions import (
    ConnectionClosedError,
    ExecutionError,
    ProtocolError,
    TransactionError,
)
from repro.protocol import PacketType, ProxyClient, encode
from repro.protocol.message import read_packet, send_packet


@pytest.fixture
def runtime():
    rt = ShardingRuntime()
    with ShardingDataSource(rt).get_connection() as conn:
        conn.execute("REGISTER RESOURCE ds0, ds1")
        conn.execute(
            "CREATE SHARDING TABLE RULE t_user (RESOURCES(ds0, ds1), "
            "SHARDING_COLUMN=uid, TYPE=mod, PROPERTIES('sharding-count'=2))"
        )
        conn.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(64), age INT)")
        conn.execute(
            "INSERT INTO t_user (uid, name, age) VALUES "
            "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)"
        )
    yield rt
    rt.close()


class TestShardingDataSource:
    def test_query_round_trip(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        result = conn.execute("SELECT name FROM t_user WHERE uid = 2")
        assert result.fetchall() == [("bob",)]
        conn.close()

    def test_fetch_interfaces(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        result = conn.execute("SELECT uid FROM t_user ORDER BY uid")
        assert result.fetchone() == (1,)
        assert result.fetchmany(1) == [(2,)]
        assert result.fetchall() == [(3,)]
        assert result.fetchone() is None
        conn.close()

    def test_description(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        result = conn.execute("SELECT uid, name FROM t_user WHERE uid = 1")
        assert [d[0] for d in result.description] == ["uid", "name"]
        assert conn.execute("DELETE FROM t_user WHERE uid = 99").description is None
        conn.close()

    def test_closed_connection_rejects(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.close()
        with pytest.raises(ConnectionClosedError):
            conn.execute("SELECT 1")

    def test_transaction_commit(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.begin()
        conn.execute("UPDATE t_user SET age = 99 WHERE uid = 1")
        conn.execute("UPDATE t_user SET age = 98 WHERE uid = 2")
        conn.commit()
        rows = conn.execute("SELECT age FROM t_user WHERE uid IN (1, 2) ORDER BY uid").fetchall()
        assert rows == [(99,), (98,)]
        conn.close()

    def test_transaction_rollback_spans_shards(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.begin()
        conn.execute("UPDATE t_user SET age = 0")  # hits both shards
        conn.rollback()
        rows = conn.execute("SELECT SUM(age) FROM t_user").fetchall()
        assert rows == [(90,)]
        conn.close()

    def test_read_your_writes_in_transaction(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.begin()
        conn.execute("UPDATE t_user SET age = 77 WHERE uid = 3")
        rows = conn.execute("SELECT age FROM t_user WHERE uid = 3").fetchall()
        assert rows == [(77,)]
        conn.rollback()
        conn.close()

    def test_nested_begin_rejected(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.begin()
        with pytest.raises(TransactionError):
            conn.begin()
        conn.rollback()
        conn.close()

    def test_close_rolls_back(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.begin()
        conn.execute("DELETE FROM t_user")
        conn.close()
        check = ShardingDataSource(runtime).get_connection()
        assert check.execute("SELECT COUNT(*) FROM t_user").fetchall() == [(3,)]
        check.close()

    def test_sql_level_tcl(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("BEGIN")
        assert conn.in_transaction
        conn.execute("DELETE FROM t_user WHERE uid = 1")
        conn.execute("ROLLBACK")
        assert not conn.in_transaction
        assert conn.execute("SELECT COUNT(*) FROM t_user").fetchall() == [(3,)]
        conn.close()

    def test_xa_transaction_type(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("SET VARIABLE transaction_type = 'XA'")
        conn.begin()
        conn.execute("UPDATE t_user SET age = age + 1")
        conn.commit()
        assert conn.execute("SELECT SUM(age) FROM t_user").fetchall() == [(93,)]
        conn.close()

    def test_generated_keys_surface(self, runtime):
        with ShardingDataSource(runtime).get_connection() as conn:
            conn.execute(
                "CREATE SHARDING TABLE RULE t_auto (RESOURCES(ds0, ds1), "
                "SHARDING_COLUMN=id, TYPE=hash_mod, PROPERTIES('sharding-count'=2), "
                "KEY_GENERATE_COLUMN=id, KEY_GENERATOR=snowflake)"
            )
            conn.execute("CREATE TABLE t_auto (id BIGINT PRIMARY KEY, v VARCHAR(10))")
            result = conn.execute("INSERT INTO t_auto (v) VALUES ('x'), ('y')")
            assert result.rowcount == 2
            column, keys = result.generated_keys
            assert column == "id"
            assert len(keys) == 2

    def test_hints(self, runtime):
        conn = ShardingDataSource(runtime).get_connection()
        conn.set_hint(1)
        assert conn.hint_values == [1]
        conn.clear_hint()
        assert conn.hint_values == []
        conn.close()


@pytest.fixture
def proxy(runtime):
    server = ShardingProxyServer(runtime).start()
    yield server
    server.stop()


class TestProxy:
    def test_handshake(self, proxy):
        client = ProxyClient("127.0.0.1", proxy.port)
        assert "repro-shardingsphere-proxy" in client.server_info["server"]
        client.close()

    def test_query_round_trip(self, proxy):
        with ProxyClient("127.0.0.1", proxy.port) as client:
            rows = client.execute("SELECT name FROM t_user WHERE uid = 1").fetchall()
            assert rows == [("alice",)]

    def test_dml_rowcount(self, proxy):
        with ProxyClient("127.0.0.1", proxy.port) as client:
            result = client.execute("UPDATE t_user SET age = 50 WHERE uid = 2")
            assert result.rowcount == 1

    def test_multi_row_streaming(self, proxy, runtime):
        with ShardingDataSource(runtime).get_connection() as conn:
            rows = ", ".join(f"({i + 10}, 'u{i}', {20 + i % 30})" for i in range(500))
            conn.execute(f"INSERT INTO t_user (uid, name, age) VALUES {rows}")
        with ProxyClient("127.0.0.1", proxy.port) as client:
            fetched = client.execute("SELECT uid FROM t_user ORDER BY uid").fetchall()
            assert len(fetched) == 503

    def test_error_keeps_session_alive(self, proxy):
        with ProxyClient("127.0.0.1", proxy.port) as client:
            with pytest.raises(ExecutionError):
                client.execute("SELECT * FROM no_such_table_anywhere")
            assert client.execute("SELECT COUNT(*) FROM t_user").fetchall()[0][0] >= 3

    def test_per_session_transactions(self, proxy):
        with ProxyClient("127.0.0.1", proxy.port) as a, ProxyClient("127.0.0.1", proxy.port) as b:
            a.begin()
            a.execute("UPDATE t_user SET age = 1 WHERE uid = 1")
            a.rollback()
            rows = b.execute("SELECT age FROM t_user WHERE uid = 1").fetchall()
            assert rows == [(30,)]

    def test_distsql_over_proxy(self, proxy):
        with ProxyClient("127.0.0.1", proxy.port) as client:
            rows = client.execute("SHOW SHARDING TABLE RULES").fetchall()
            assert rows[0][0] == "t_user"

    def test_concurrent_clients(self, proxy):
        errors = []

        def worker():
            try:
                with ProxyClient("127.0.0.1", proxy.port) as client:
                    for _ in range(10):
                        client.execute("SELECT * FROM t_user WHERE uid = 1").fetchall()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors

    def test_bad_handshake_rejected(self, proxy):
        sock = socket.create_connection(("127.0.0.1", proxy.port))
        send_packet(sock, PacketType.QUERY, {"sql": "SELECT 1"})
        packet_type, body = read_packet(sock)
        assert packet_type is PacketType.ERROR
        sock.close()


class TestProtocolFraming:
    def test_encode_decode_roundtrip(self):
        import io

        payload = {"sql": "SELECT 'héllo'", "params": [1, 2.5, None, True]}
        raw = encode(PacketType.QUERY, payload)

        class FakeSock:
            def __init__(self, data):
                self.buffer = io.BytesIO(data)

            def recv(self, n):
                return self.buffer.read(n)

        packet_type, body = read_packet(FakeSock(raw))
        assert packet_type is PacketType.QUERY
        assert body == payload

    def test_datetime_survives(self):
        import datetime
        import io

        moment = datetime.datetime(2021, 11, 10, 12, 0)
        raw = encode(PacketType.ROW_BATCH, {"rows": [[moment]]})

        class FakeSock:
            def __init__(self, data):
                self.buffer = io.BytesIO(data)

            def recv(self, n):
                return self.buffer.read(n)

        _, body = read_packet(FakeSock(raw))
        assert body["rows"][0][0] == moment

    def test_truncated_packet_raises(self):
        class EmptySock:
            def recv(self, n):
                return b""

        with pytest.raises(ProtocolError):
            read_packet(EmptySock())
