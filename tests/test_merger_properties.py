"""Property tests for the result merger: merging N sorted shards must
equal sorting/aggregating the concatenation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import AggregateSpec, MaterializedResult, MergeSpec, merge

shard_values = st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=20)
shards_strategy = st.lists(shard_values, min_size=2, max_size=5)


def make_shards(shards, desc=False):
    return [
        MaterializedResult(["v"], [(value,) for value in sorted(shard, reverse=desc)])
        for shard in shards
    ]


@settings(max_examples=80, deadline=None)
@given(shards=shards_strategy, desc=st.booleans())
def test_ordered_merge_equals_global_sort(shards, desc):
    spec = MergeSpec(is_query=True, order_keys=[(0, desc)])
    merged = merge(spec, make_shards(shards, desc))
    got = [row[0] for row in merged.fetchall()]
    expected = sorted([v for shard in shards for v in shard], reverse=desc)
    assert got == expected


@settings(max_examples=80, deadline=None)
@given(shards=shards_strategy)
def test_iteration_merge_preserves_multiset(shards):
    spec = MergeSpec(is_query=True)
    merged = merge(spec, make_shards(shards))
    got = sorted(row[0] for row in merged.fetchall())
    assert got == sorted(v for shard in shards for v in shard)


@settings(max_examples=80, deadline=None)
@given(shards=shards_strategy)
def test_sum_count_aggregation_equals_global(shards):
    spec = MergeSpec(
        is_query=True,
        aggregates=[AggregateSpec("COUNT", 0), AggregateSpec("SUM", 1)],
    )
    results = [
        MaterializedResult(["c", "s"], [(len(shard), sum(shard) if shard else None)])
        for shard in shards
    ]
    merged = merge(spec, results).fetchall()
    flat = [v for shard in shards for v in shard]
    assert merged[0][0] == len(flat)
    assert merged[0][1] == (sum(flat) if flat else None)


@settings(max_examples=80, deadline=None)
@given(shards=shards_strategy)
def test_avg_from_partials_equals_global_mean(shards):
    spec = MergeSpec(
        is_query=True,
        output_width=1,
        aggregates=[AggregateSpec("AVG", 0, count_index=1, sum_index=2)],
    )
    results = []
    for shard in shards:
        count = len(shard)
        total = sum(shard) if shard else None
        local_avg = total / count if count else None
        results.append(MaterializedResult(["a", "c", "s"], [(local_avg, count, total)]))
    merged = merge(spec, results).fetchall()
    flat = [v for shard in shards for v in shard]
    if flat:
        assert merged[0][0] == sum(flat) / len(flat)
    else:
        assert merged[0][0] is None


@settings(max_examples=60, deadline=None)
@given(shards=shards_strategy, count=st.integers(1, 10), offset=st.integers(0, 10))
def test_pagination_matches_slicing(shards, count, offset):
    spec = MergeSpec(
        is_query=True, order_keys=[(0, False)], limit_count=count, limit_offset=offset
    )
    merged = merge(spec, make_shards(shards))
    got = [row[0] for row in merged.fetchall()]
    expected = sorted(v for shard in shards for v in shard)[offset : offset + count]
    assert got == expected


@settings(max_examples=60, deadline=None)
@given(shards=st.lists(
    st.lists(st.tuples(st.integers(0, 5), st.integers(-20, 20)), min_size=0, max_size=15),
    min_size=2, max_size=4,
))
def test_group_by_stream_equals_memory(shards):
    """Stream and memory group merges must agree when input is pre-sorted."""
    sorted_shards = [sorted(shard) for shard in shards]
    results = lambda: [
        MaterializedResult(
            ["g", "s"],
            [(g, sum(v for gg, v in shard if gg == g)) for g in sorted({gg for gg, _ in shard})],
        )
        for shard in sorted_shards
    ]
    base = dict(
        is_query=True, has_group_by=True, group_keys=[0], order_keys=[(0, False)],
        aggregates=[AggregateSpec("SUM", 1)],
    )
    stream = merge(MergeSpec(**base, group_equals_order=True), results()).fetchall()
    memory = merge(MergeSpec(**base, group_equals_order=False), results()).fetchall()
    assert stream == memory
