"""Unit tests for the result merger (stream/memory merge strategies)."""

import pytest

from repro.engine import AggregateSpec, MaterializedResult, MergeSpec, merge
from repro.exceptions import MergeError


def shard(columns, rows):
    return MaterializedResult(columns, [tuple(r) for r in rows])


class TestIteration:
    def test_chains_results(self):
        spec = MergeSpec(is_query=True)
        merged = merge(spec, [shard(["a"], [[1], [2]]), shard(["a"], [[3]])])
        assert merged.merger_kind == "iteration"
        assert merged.fetchall() == [(1,), (2,), (3,)]

    def test_single_result_passthrough(self):
        spec = MergeSpec(is_query=True)
        merged = merge(spec, [shard(["a"], [[1]])])
        assert merged.merger_kind == "passthrough"

    def test_empty_results(self):
        assert merge(MergeSpec(is_query=True), []).fetchall() == []


class TestOrderByStream:
    def test_multiway_merge(self):
        spec = MergeSpec(is_query=True, order_keys=[(0, False)])
        merged = merge(
            spec,
            [shard(["v"], [[1], [4], [7]]), shard(["v"], [[2], [5]]), shard(["v"], [[3], [6]])],
        )
        assert merged.merger_kind == "order-by-stream"
        assert [r[0] for r in merged.fetchall()] == [1, 2, 3, 4, 5, 6, 7]

    def test_descending(self):
        spec = MergeSpec(is_query=True, order_keys=[(0, True)])
        merged = merge(spec, [shard(["v"], [[7], [4]]), shard(["v"], [[9], [1]])])
        assert [r[0] for r in merged.fetchall()] == [9, 7, 4, 1]

    def test_mixed_directions(self):
        spec = MergeSpec(is_query=True, order_keys=[(0, False), (1, True)])
        merged = merge(
            spec,
            [shard(["a", "b"], [[1, 5], [2, 1]]), shard(["a", "b"], [[1, 9], [2, 3]])],
        )
        assert merged.fetchall() == [(1, 9), (1, 5), (2, 3), (2, 1)]

    def test_key_by_column_name(self):
        spec = MergeSpec(is_query=True, order_keys=[("v", False)])
        merged = merge(spec, [shard(["v"], [[2]]), shard(["v"], [[1]])])
        assert merged.fetchall() == [(1,), (2,)]

    def test_unresolvable_key_raises(self):
        spec = MergeSpec(is_query=True, order_keys=[("nope", False)])
        with pytest.raises(MergeError):
            merge(spec, [shard(["v"], [[1]]), shard(["v"], [[2]])])

    def test_nulls_sort_first(self):
        spec = MergeSpec(is_query=True, order_keys=[(0, False)])
        merged = merge(spec, [shard(["v"], [[None], [5]]), shard(["v"], [[2]])])
        assert [r[0] for r in merged.fetchall()] == [None, 2, 5]


class TestAggregation:
    def test_sum_count_min_max(self):
        spec = MergeSpec(
            is_query=True,
            aggregates=[
                AggregateSpec("COUNT", 0),
                AggregateSpec("SUM", 1),
                AggregateSpec("MIN", 2),
                AggregateSpec("MAX", 3),
            ],
        )
        merged = merge(
            spec,
            [shard(["c", "s", "mn", "mx"], [[2, 10, 1, 9]]), shard(["c", "s", "mn", "mx"], [[3, 20, 0, 12]])],
        )
        assert merged.fetchall() == [(5, 30, 0, 12)]
        assert merged.merger_kind == "aggregation"

    def test_avg_from_derived(self):
        spec = MergeSpec(
            is_query=True,
            output_width=1,
            aggregates=[AggregateSpec("AVG", 0, count_index=1, sum_index=2)],
        )
        merged = merge(
            spec,
            [
                shard(["avg", "cnt", "sum"], [[10.0, 2, 20.0]]),
                shard(["avg", "cnt", "sum"], [[40.0, 1, 40.0]]),
            ],
        )
        # correct global avg is 60/3=20, NOT mean of shard means (25)
        assert merged.fetchall() == [(20.0,)]

    def test_count_empty_shards_is_zero(self):
        spec = MergeSpec(is_query=True, aggregates=[AggregateSpec("COUNT", 0)])
        merged = merge(spec, [shard(["c"], [[0]]), shard(["c"], [[0]])])
        assert merged.fetchall() == [(0,)]

    def test_null_partials_skipped(self):
        spec = MergeSpec(is_query=True, aggregates=[AggregateSpec("SUM", 0)])
        merged = merge(spec, [shard(["s"], [[None]]), shard(["s"], [[7]])])
        assert merged.fetchall() == [(7,)]


class TestGroupBy:
    def make_spec(self, stream):
        return MergeSpec(
            is_query=True,
            has_group_by=True,
            group_keys=[0],
            order_keys=[(0, False)],
            aggregates=[AggregateSpec("SUM", 1)],
            group_equals_order=stream,
        )

    def test_stream_group_merge_paper_example(self):
        """Fig. 7: per-shard sorted group results fold correctly."""
        spec = self.make_spec(stream=True)
        merged = merge(
            spec,
            [
                shard(["name", "s"], [["jerry", 90], ["tom", 85]]),
                shard(["name", "s"], [["jerry", 88], ["tom", 100]]),
            ],
        )
        assert merged.merger_kind == "group-by-stream"
        assert merged.fetchall() == [("jerry", 178), ("tom", 185)]

    def test_memory_group_merge(self):
        spec = self.make_spec(stream=False)
        merged = merge(
            spec,
            [
                shard(["name", "s"], [["tom", 85], ["jerry", 90]]),
                shard(["name", "s"], [["jerry", 88]]),
            ],
        )
        assert merged.merger_kind == "group-by-memory"
        assert merged.fetchall() == [("jerry", 178), ("tom", 85)]

    def test_memory_group_resorts_by_order_keys(self):
        spec = MergeSpec(
            is_query=True,
            has_group_by=True,
            group_keys=[0],
            order_keys=[(1, True)],
            aggregates=[AggregateSpec("SUM", 1)],
            group_equals_order=False,
        )
        merged = merge(
            spec,
            [shard(["k", "s"], [["a", 1], ["b", 5]]), shard(["k", "s"], [["a", 2]])],
        )
        assert merged.fetchall() == [("b", 5), ("a", 3)]


class TestDecorators:
    def test_distinct(self):
        spec = MergeSpec(is_query=True, distinct=True)
        merged = merge(spec, [shard(["v"], [[1], [2]]), shard(["v"], [[2], [3]])])
        assert sorted(merged.fetchall()) == [(1,), (2,), (3,)]

    def test_pagination(self):
        spec = MergeSpec(is_query=True, order_keys=[(0, False)], limit_count=2, limit_offset=1)
        merged = merge(spec, [shard(["v"], [[1], [3]]), shard(["v"], [[2], [4]])])
        assert merged.fetchall() == [(2,), (3,)]

    def test_offset_only(self):
        spec = MergeSpec(is_query=True, order_keys=[(0, False)], limit_offset=2)
        merged = merge(spec, [shard(["v"], [[1], [3]]), shard(["v"], [[2]])])
        assert merged.fetchall() == [(3,)]

    def test_derived_columns_trimmed(self):
        spec = MergeSpec(is_query=True, output_width=1, order_keys=[(1, False)])
        merged = merge(
            spec,
            [shard(["oid", "ORDER_BY_DERIVED_0"], [[10, 2]]), shard(["oid", "ORDER_BY_DERIVED_0"], [[11, 1]])],
        )
        assert merged.columns == ["oid"]
        assert merged.fetchall() == [(11,), (10,)]


class TestDistinctAggregateGuards:
    def test_count_distinct_across_shards_fails_loudly(self):
        spec = MergeSpec(
            is_query=True,
            aggregates=[AggregateSpec("COUNT", 0, distinct=True)],
        )
        with pytest.raises(MergeError, match="DISTINCT"):
            merge(spec, [shard(["c"], [[2]]), shard(["c"], [[3]])]).fetchall()

    def test_count_distinct_single_shard_passes_through(self, seeded_engine):
        # routed to one shard: the data source computes it exactly
        rows = seeded_engine.execute(
            "SELECT COUNT(DISTINCT amount) FROM t_order WHERE uid = 1"
        ).fetchall()
        assert rows == [(2,)]

    def test_min_max_distinct_harmless(self):
        # MIN/MAX are distinct-insensitive and merge fine
        spec = MergeSpec(is_query=True, aggregates=[AggregateSpec("MAX", 0, distinct=True)])
        merged = merge(spec, [shard(["m"], [[2]]), shard(["m"], [[9]])])
        assert merged.fetchall() == [(9,)]
