"""Unit tests for the SQL router: broadcast / standard / cartesian routes."""

import pytest

from repro.engine import build_context, route
from repro.exceptions import RouteError
from repro.sharding import DataNode, ShardingRule, StandardShardingStrategy, TableRule, create_algorithm
from repro.sql import parse


def routed(sql, rule, params=()):
    context = build_context(parse(sql), sql, params, rule)
    return route(context, rule)


class TestStandardRoute:
    def test_equality_single_node(self, paper_rule):
        result = routed("SELECT * FROM t_user WHERE uid = 4", paper_rule)
        assert result.route_type == "standard"
        assert result.is_single
        unit = result.units[0]
        assert unit.data_source == "ds0"
        assert unit.actual_table("t_user") == "t_user_h0"

    def test_in_spans_nodes(self, paper_rule):
        result = routed("SELECT * FROM t_user WHERE uid IN (1, 2)", paper_rule)
        assert len(result.units) == 2
        assert sorted(u.data_source for u in result.units) == ["ds0", "ds1"]

    def test_no_condition_hits_all_nodes(self, paper_rule):
        result = routed("SELECT * FROM t_user", paper_rule)
        assert len(result.units) == 2
        assert result.route_type == "broadcast"

    def test_update_and_delete_route(self, paper_rule):
        result = routed("UPDATE t_user SET age = 1 WHERE uid = 3", paper_rule)
        assert result.is_single and result.units[0].data_source == "ds1"
        result = routed("DELETE FROM t_user WHERE uid = 2", paper_rule)
        assert result.is_single and result.units[0].data_source == "ds0"


class TestBindingRoute:
    def test_paper_example(self, paper_rule):
        """The exact routing example of Section V-B."""
        result = routed(
            "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE u.uid IN (1, 2)",
            paper_rule,
        )
        assert result.route_type == "standard"
        assert len(result.units) == 2
        maps = {u.data_source: u.table_map for u in result.units}
        assert maps["ds0"] == {"t_user": "t_user_h0", "t_order": "t_order_h0"}
        assert maps["ds1"] == {"t_user": "t_user_h1", "t_order": "t_order_h1"}

    def test_condition_on_partner_table_narrows(self, paper_rule):
        result = routed(
            "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE o.uid = 2",
            paper_rule,
        )
        assert result.is_single
        assert result.units[0].data_source == "ds0"


class TestCartesianRoute:
    def test_paper_example(self, nonbinding_rule):
        result = routed(
            "SELECT * FROM t_user u JOIN t_order o ON u.uid = o.uid WHERE u.uid IN (1, 2)",
            nonbinding_rule,
        )
        assert result.route_type == "cartesian"
        # One user table and one order table per source -> 1 combo per ds.
        assert len(result.units) == 2

    def test_cartesian_explodes_within_source(self):
        algo = create_algorithm("MOD", {"sharding-count": 2})
        t_a = TableRule(
            "t_a",
            [DataNode("ds0", "t_a_0"), DataNode("ds0", "t_a_1")],
            table_strategy=StandardShardingStrategy("k", algo),
        )
        algo2 = create_algorithm("MOD", {"sharding-count": 2})
        t_b = TableRule(
            "t_b",
            [DataNode("ds0", "t_b_0"), DataNode("ds0", "t_b_1")],
            table_strategy=StandardShardingStrategy("k", algo2),
        )
        rule = ShardingRule([t_a, t_b])
        result = routed("SELECT * FROM t_a JOIN t_b ON t_a.k = t_b.k", rule)
        assert result.route_type == "cartesian"
        assert len(result.units) == 4  # 2 x 2 cross product

    def test_no_colocated_shards_raises(self):
        t_a = TableRule("t_a", [DataNode("ds0", "t_a_0")])
        t_b = TableRule("t_b", [DataNode("ds1", "t_b_0")])
        rule = ShardingRule([t_a, t_b])
        with pytest.raises(RouteError):
            routed("SELECT * FROM t_a JOIN t_b ON t_a.k = t_b.k", rule)


class TestInsertRoute:
    def test_rows_split_by_shard(self, paper_rule):
        result = routed(
            "INSERT INTO t_user (uid, name) VALUES (1, 'a'), (2, 'b'), (3, 'c')",
            paper_rule,
        )
        by_ds = {u.data_source: u.row_indexes for u in result.units}
        assert by_ds == {"ds1": (0, 2), "ds0": (1,)}

    def test_single_shard_insert(self, paper_rule):
        result = routed("INSERT INTO t_user (uid, name) VALUES (2, 'b')", paper_rule)
        assert result.is_single

    def test_broadcast_table_insert_goes_everywhere(self, paper_rule):
        result = routed("INSERT INTO t_dict (k, v) VALUES ('a', 'b')", paper_rule)
        assert result.route_type == "broadcast"
        assert len(result.units) == 2


class TestBroadcastAndUnicast:
    def test_ddl_on_sharded_table_hits_all_nodes(self, paper_rule):
        result = routed("TRUNCATE TABLE t_user", paper_rule)
        assert result.route_type == "broadcast"
        assert len(result.units) == 2
        tables = sorted(u.actual_table("t_user") for u in result.units)
        assert tables == ["t_user_h0", "t_user_h1"]

    def test_create_table_on_unknown_goes_to_default(self, paper_rule):
        result = routed("CREATE TABLE t_new (a INT)", paper_rule)
        assert result.route_type == "unicast"
        assert result.units[0].data_source == "ds0"

    def test_select_broadcast_table_unicasts(self, paper_rule):
        result = routed("SELECT * FROM t_dict", paper_rule)
        assert result.route_type == "unicast"
        assert result.is_single

    def test_update_broadcast_table_goes_everywhere(self, paper_rule):
        result = routed("UPDATE t_dict SET v = 'x' WHERE k = 'a'", paper_rule)
        assert result.route_type == "broadcast"
        assert len(result.units) == 2

    def test_unsharded_table_unicast(self, paper_rule):
        result = routed("SELECT * FROM t_plain", paper_rule)
        assert result.route_type == "unicast"
        assert result.units[0].data_source == "ds0"

    def test_hint_routes_without_where(self, fleet, paper_rule):
        from repro.engine import build_context
        from repro.sharding import HintShardingStrategy, TableRule, DataNode, create_algorithm

        hint_rule = TableRule(
            "t_user",
            [DataNode("ds0", "t_user_h0"), DataNode("ds1", "t_user_h1")],
            database_strategy=HintShardingStrategy(create_algorithm("MOD", {"sharding-count": 2})),
        )
        rule = ShardingRule([hint_rule])
        statement = parse("SELECT * FROM t_user")
        context = build_context(statement, "", (), rule, hint_values=[1])
        result = route(context, rule)
        assert result.is_single
        assert result.units[0].data_source == "ds1"
