"""Unit tests for the SQL parser."""

import pytest

from repro.exceptions import SQLParseError, UnsupportedSQLError
from repro.sql import ast, parse, parse_expression


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t_user")
        assert isinstance(stmt, ast.SelectStatement)
        assert isinstance(stmt.select_items[0].expression, ast.Star)
        assert stmt.from_table.name == "t_user"

    def test_qualified_star(self):
        stmt = parse("SELECT u.* FROM t_user u")
        assert stmt.select_items[0].expression.table == "u"

    def test_columns_and_aliases(self):
        stmt = parse("SELECT uid, name AS n, age a FROM t_user")
        assert stmt.select_items[0].expression.name == "uid"
        assert stmt.select_items[1].alias == "n"
        assert stmt.select_items[2].alias == "a"

    def test_table_alias_with_and_without_as(self):
        assert parse("SELECT * FROM t_user AS u").from_table.alias == "u"
        assert parse("SELECT * FROM t_user u").from_table.alias == "u"

    def test_where_equality(self):
        stmt = parse("SELECT * FROM t WHERE uid = 5")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "="
        assert stmt.where.right.value == 5

    def test_where_in(self):
        stmt = parse("SELECT * FROM t WHERE uid IN (1, 2, 3)")
        assert isinstance(stmt.where, ast.InExpr)
        assert [i.value for i in stmt.where.items] == [1, 2, 3]

    def test_where_not_in(self):
        stmt = parse("SELECT * FROM t WHERE uid NOT IN (1)")
        assert stmt.where.negated

    def test_where_between(self):
        stmt = parse("SELECT * FROM t WHERE k BETWEEN 1 AND 10")
        assert isinstance(stmt.where, ast.BetweenExpr)
        assert stmt.where.low.value == 1
        assert stmt.where.high.value == 10

    def test_between_inside_conjunction(self):
        stmt = parse("SELECT * FROM t WHERE k BETWEEN 1 AND 10 AND c = 'x'")
        assert isinstance(stmt.where, ast.BinaryOp)
        assert stmt.where.op == "AND"
        assert isinstance(stmt.where.left, ast.BetweenExpr)

    def test_is_null_and_is_not_null(self):
        assert not parse("SELECT * FROM t WHERE c IS NULL").where.negated
        assert parse("SELECT * FROM t WHERE c IS NOT NULL").where.negated

    def test_group_by_having(self):
        stmt = parse("SELECT name, SUM(score) FROM t GROUP BY name HAVING SUM(score) > 10")
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, ast.BinaryOp)

    def test_order_by_directions(self):
        stmt = parse("SELECT * FROM t ORDER BY a ASC, b DESC, c")
        assert [i.desc for i in stmt.order_by] == [False, True, False]

    def test_limit_offset(self):
        stmt = parse("SELECT * FROM t LIMIT 10 OFFSET 5")
        assert stmt.limit.count.value == 10
        assert stmt.limit.offset.value == 5

    def test_mysql_limit_comma(self):
        stmt = parse("SELECT * FROM t LIMIT 5, 10")
        assert stmt.limit.count.value == 10
        assert stmt.limit.offset.value == 5

    def test_postgres_offset_only(self):
        stmt = parse("SELECT * FROM t OFFSET 3")
        assert stmt.limit.count is None
        assert stmt.limit.offset.value == 3

    def test_join_with_on(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.x = b.y")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "INNER"
        assert stmt.joins[0].condition.op == "="

    def test_left_join(self):
        stmt = parse("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert stmt.joins[0].kind == "LEFT"

    def test_comma_join_is_cross(self):
        stmt = parse("SELECT * FROM a, b WHERE a.x = b.y")
        assert stmt.joins[0].kind == "CROSS"

    def test_distinct(self):
        assert parse("SELECT DISTINCT name FROM t").distinct

    def test_for_update(self):
        assert parse("SELECT * FROM t WHERE id = 1 FOR UPDATE").for_update

    def test_aggregates_collected(self):
        stmt = parse("SELECT COUNT(*), MAX(a), SUM(b) FROM t")
        names = [a.name for a in stmt.aggregates()]
        assert names == ["COUNT", "MAX", "SUM"]

    def test_count_distinct(self):
        stmt = parse("SELECT COUNT(DISTINCT uid) FROM t")
        assert stmt.select_items[0].expression.distinct

    def test_placeholders_get_ordinals(self):
        stmt = parse("SELECT * FROM t WHERE a = ? AND b = ?")
        placeholders = [n for n in stmt.where.walk() if isinstance(n, ast.Placeholder)]
        assert [p.index for p in placeholders] == [0, 1]

    def test_select_without_from(self):
        stmt = parse("SELECT 1")
        assert stmt.from_table is None

    def test_case_expression(self):
        stmt = parse("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t")
        expr = stmt.select_items[0].expression
        assert isinstance(expr, ast.CaseExpr)
        assert expr.default.value == "neg"


class TestDML:
    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert isinstance(stmt, ast.InsertStatement)
        assert stmt.columns == ["a", "b"]
        assert len(stmt.values_rows) == 2
        assert stmt.values_rows[1][1].value == "y"

    def test_insert_without_columns(self):
        stmt = parse("INSERT INTO t VALUES (1, 2)")
        assert stmt.columns == []

    def test_update(self):
        stmt = parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 9")
        assert isinstance(stmt, ast.UpdateStatement)
        assert stmt.assignments[0][0] == "a"
        assert isinstance(stmt.assignments[1][1], ast.BinaryOp)
        assert stmt.where.right.value == 9

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE id = 1")
        assert isinstance(stmt, ast.DeleteStatement)

    def test_delete_without_where(self):
        assert parse("DELETE FROM t").where is None


class TestDDL:
    def test_create_table(self):
        stmt = parse(
            "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, "
            "name VARCHAR(64) NOT NULL, score DECIMAL(10, 2) DEFAULT 0)"
        )
        assert isinstance(stmt, ast.CreateTableStatement)
        assert stmt.primary_key == ["id"]
        assert stmt.columns[0].auto_increment
        assert stmt.columns[1].not_null
        assert stmt.columns[1].length == 64
        assert stmt.columns[2].default == 0

    def test_create_table_composite_pk(self):
        stmt = parse("CREATE TABLE t (a INT, b INT, PRIMARY KEY (a, b))")
        assert stmt.primary_key == ["a", "b"]

    def test_create_table_if_not_exists(self):
        assert parse("CREATE TABLE IF NOT EXISTS t (a INT)").if_not_exists

    def test_create_table_skips_key_definitions(self):
        stmt = parse("CREATE TABLE t (a INT, KEY k_a (a))")
        assert [c.name for c in stmt.columns] == ["a"]

    def test_create_index(self):
        stmt = parse("CREATE INDEX idx_k ON t (k)")
        assert isinstance(stmt, ast.CreateIndexStatement)
        assert stmt.columns == ["k"]
        assert not stmt.unique

    def test_create_unique_index(self):
        assert parse("CREATE UNIQUE INDEX i ON t (a)").unique

    def test_drop_table(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, ast.DropTableStatement)
        assert stmt.if_exists

    def test_truncate(self):
        stmt = parse("TRUNCATE TABLE t")
        assert isinstance(stmt, ast.TruncateStatement)


class TestTCLAndDAL:
    @pytest.mark.parametrize("sql", ["BEGIN", "BEGIN WORK", "START TRANSACTION"])
    def test_begin_forms(self, sql):
        assert isinstance(parse(sql), ast.BeginStatement)

    def test_commit_rollback(self):
        assert isinstance(parse("COMMIT"), ast.CommitStatement)
        assert isinstance(parse("ROLLBACK"), ast.RollbackStatement)

    def test_set_variable(self):
        stmt = parse("SET VARIABLE transaction_type = 'XA'")
        assert stmt.name == "transaction_type"
        assert stmt.value == "XA"

    def test_show(self):
        stmt = parse("SHOW TABLES")
        assert stmt.subject == "TABLES"

    def test_statement_categories(self):
        assert parse("SELECT 1").category == "DQL"
        assert parse("DELETE FROM t").category == "DML"
        assert parse("DROP TABLE t").category == "DDL"
        assert parse("COMMIT").category == "TCL"


class TestErrors:
    def test_trailing_garbage(self):
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM t garbage garbage")

    def test_missing_from_table(self):
        with pytest.raises(SQLParseError):
            parse("SELECT * FROM")

    def test_unsupported_statement(self):
        with pytest.raises(UnsupportedSQLError):
            parse("EXPLAIN SELECT 1")

    def test_semicolon_tolerated(self):
        assert isinstance(parse("SELECT 1;"), ast.SelectStatement)


class TestExpressions:
    def test_precedence_and_over_or(self):
        expr = parse_expression("a = 1 OR b = 2 AND c = 3")
        assert expr.op == "OR"
        assert expr.right.op == "AND"

    def test_arithmetic_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus(self):
        expr = parse_expression("-5")
        assert isinstance(expr, ast.UnaryOp)

    def test_not(self):
        expr = parse_expression("NOT a = 1")
        assert expr.op == "NOT"

    def test_not_like(self):
        expr = parse_expression("name NOT LIKE 'a%'")
        assert isinstance(expr, ast.UnaryOp)
        assert expr.operand.op == "LIKE"

    def test_qualified_column(self):
        expr = parse_expression("u.uid")
        assert expr.table == "u"
        assert expr.name == "uid"

    def test_function_call(self):
        expr = parse_expression("COALESCE(a, b, 0)")
        assert expr.name == "COALESCE"
        assert len(expr.args) == 3

    def test_walk_yields_descendants(self):
        expr = parse_expression("a + b * c")
        names = [n.name for n in expr.walk() if isinstance(n, ast.ColumnRef)]
        assert names == ["a", "b", "c"]
