"""Unit tests for rules, strategies, data nodes and AutoTable."""

import pytest

from repro.exceptions import ShardingConfigError
from repro.sharding import (
    DataNode,
    KeyGenerateConfig,
    NoneShardingStrategy,
    ShardingRule,
    ShardingValue,
    StandardShardingStrategy,
    TableRule,
    build_auto_table_rule,
    build_standard_table_rule,
    compute_data_nodes,
    create_algorithm,
    create_key_generator,
    create_physical_tables,
)
from repro.storage import DataSource, TableSchema, Column, make_type


def mod2():
    return create_algorithm("MOD", {"sharding-count": 2})


def mod(n):
    return create_algorithm("MOD", {"sharding-count": n})


class TestDataNode:
    def test_parse(self):
        node = DataNode.parse("ds0.t_user_0")
        assert node == DataNode("ds0", "t_user_0")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ShardingConfigError):
            DataNode.parse("no-dot")

    def test_str(self):
        assert str(DataNode("ds0", "t")) == "ds0.t"


class TestShardingValue:
    def test_precise_intersection(self):
        a = ShardingValue("uid", values=[1, 2, 3])
        b = ShardingValue("uid", values=[2, 3, 4])
        assert a.intersect(b).values == [2, 3]

    def test_precise_beats_range(self):
        a = ShardingValue("uid", values=[1])
        b = ShardingValue("uid", range_=(0, 10))
        assert a.intersect(b).is_precise
        assert b.intersect(a).is_precise


class TestStandardStrategy:
    def test_precise_route(self):
        strategy = StandardShardingStrategy("uid", mod2())
        targets = ["t_0", "t_1"]
        routed = strategy.route(targets, {"uid": ShardingValue("uid", values=[2])})
        assert routed == ["t_0"]

    def test_in_values_dedupe(self):
        strategy = StandardShardingStrategy("uid", mod2())
        routed = strategy.route(["t_0", "t_1"], {"uid": ShardingValue("uid", values=[1, 3, 5])})
        assert routed == ["t_1"]

    def test_missing_condition_routes_all(self):
        strategy = StandardShardingStrategy("uid", mod2())
        assert strategy.route(["t_0", "t_1"], {}) == ["t_0", "t_1"]

    def test_range_route(self):
        strategy = StandardShardingStrategy("uid", mod(4))
        routed = strategy.route(
            ["t_0", "t_1", "t_2", "t_3"], {"uid": ShardingValue("uid", range_=(1, 2))}
        )
        assert sorted(routed) == ["t_1", "t_2"]


def paper_rule():
    """The paper's running example: t_user/t_order split by uid % 2."""
    t_user = build_standard_table_rule(
        "t_user", ["ds0", "ds1"], tables_per_source=1,
        database_column="uid", database_algorithm=mod2(),
    )
    # nodes: ds0.t_user_0, ds1.t_user_0 -> rename to paper style
    t_user = TableRule(
        "t_user",
        [DataNode("ds0", "t_user_h0"), DataNode("ds1", "t_user_h1")],
        database_strategy=StandardShardingStrategy("uid", mod2()),
    )
    t_order = TableRule(
        "t_order",
        [DataNode("ds0", "t_order_h0"), DataNode("ds1", "t_order_h1")],
        database_strategy=StandardShardingStrategy("uid", mod2()),
    )
    return ShardingRule(
        table_rules=[t_user, t_order],
        binding_groups=[["t_user", "t_order"]],
        broadcast_tables=["t_dict"],
        default_data_source="ds0",
    )


class TestTableRule:
    def test_route_equality_single_node(self):
        rule = paper_rule().table_rule("t_user")
        nodes = rule.route({"uid": ShardingValue("uid", values=[4])})
        assert nodes == [DataNode("ds0", "t_user_h0")]

    def test_route_in_two_nodes(self):
        rule = paper_rule().table_rule("t_user")
        nodes = rule.route({"uid": ShardingValue("uid", values=[1, 2])})
        assert set(nodes) == {DataNode("ds0", "t_user_h0"), DataNode("ds1", "t_user_h1")}

    def test_route_no_condition_broadcasts_to_all_nodes(self):
        rule = paper_rule().table_rule("t_user")
        assert len(rule.route({})) == 2

    def test_empty_nodes_rejected(self):
        with pytest.raises(ShardingConfigError):
            TableRule("t", [])

    def test_grid_rule_routes_both_levels(self):
        rule = build_standard_table_rule(
            "t_x", ["ds0", "ds1"], tables_per_source=2,
            database_column="uid", database_algorithm=mod2(),
            table_column="oid", table_algorithm=mod2(),
        )
        nodes = rule.route({
            "uid": ShardingValue("uid", values=[3]),
            "oid": ShardingValue("oid", values=[4]),
        })
        assert nodes == [DataNode("ds1", "t_x_0")]

    def test_sharding_columns(self):
        rule = build_standard_table_rule(
            "t_x", ["ds0"], tables_per_source=2,
            table_column="oid", table_algorithm=mod2(),
        )
        assert rule.sharding_columns == {"oid"}


class TestShardingRule:
    def test_is_sharded_and_broadcast(self):
        rule = paper_rule()
        assert rule.is_sharded("T_USER")
        assert not rule.is_sharded("t_nope")
        assert rule.is_broadcast("t_dict")

    def test_binding_detection(self):
        rule = paper_rule()
        assert rule.are_binding(["t_user", "t_order"])
        assert not rule.are_binding(["t_user", "t_other"])

    def test_binding_partner_node(self):
        rule = paper_rule()
        user = rule.table_rule("t_user")
        order = rule.table_rule("t_order")
        node = DataNode("ds1", "t_user_h1")
        assert rule.binding_partner_node(user, node, order) == DataNode("ds1", "t_order_h1")

    def test_binding_group_validation(self):
        rule = paper_rule()
        with pytest.raises(ShardingConfigError):
            rule.add_binding_group(["t_user", "missing_table"])
        with pytest.raises(ShardingConfigError):
            rule.add_binding_group(["t_user"])

    def test_binding_requires_same_node_count(self):
        rule = paper_rule()
        uneven = TableRule(
            "t_big", [DataNode("ds0", "t_big_0"), DataNode("ds0", "t_big_1"), DataNode("ds1", "t_big_2")],
        )
        rule.add_table_rule(uneven)
        with pytest.raises(ShardingConfigError):
            rule.add_binding_group(["t_user", "t_big"])

    def test_drop_table_rule_cleans_bindings(self):
        rule = paper_rule()
        rule.drop_table_rule("t_user")
        assert not rule.is_sharded("t_user")
        assert rule.binding_groups == []

    def test_drop_missing_rule_raises(self):
        with pytest.raises(ShardingConfigError):
            paper_rule().drop_table_rule("nope")

    def test_all_data_sources(self):
        assert paper_rule().all_data_sources() == ["ds0", "ds1"]

    def test_unknown_table_rule_raises(self):
        with pytest.raises(ShardingConfigError):
            paper_rule().table_rule("missing")


class TestAutoTable:
    def test_round_robin_distribution(self):
        nodes = compute_data_nodes("t_user", ["ds0", "ds1"], 4)
        assert nodes == [
            DataNode("ds0", "t_user_0"),
            DataNode("ds1", "t_user_1"),
            DataNode("ds0", "t_user_2"),
            DataNode("ds1", "t_user_3"),
        ]

    def test_build_auto_rule_routes_by_hash(self):
        rule = build_auto_table_rule(
            "t_user", ["ds0", "ds1"], sharding_column="uid",
            algorithm_type="HASH_MOD", properties={"sharding-count": 2},
        )
        assert rule.auto
        nodes = rule.route({"uid": ShardingValue("uid", values=[4])})
        assert nodes == [DataNode("ds0", "t_user_0")]

    def test_auto_rule_requires_count(self):
        with pytest.raises(ShardingConfigError):
            build_auto_table_rule(
                "t", ["ds0"], sharding_column="uid",
                algorithm_type="INLINE",
                properties={"algorithm-expression": "t_${uid % 2}", "sharding-column": "uid"},
            )

    def test_key_generator_attached(self):
        rule = build_auto_table_rule(
            "t_user", ["ds0"], sharding_column="uid",
            properties={"sharding-count": 2},
            key_generate_column="uid",
        )
        assert rule.key_generate is not None
        assert rule.key_generate.column == "uid"
        assert isinstance(rule.key_generate.generator.next_key(), int)

    def test_create_physical_tables(self):
        sources = {"ds0": DataSource("ds0"), "ds1": DataSource("ds1")}
        rule = build_auto_table_rule(
            "t_user", ["ds0", "ds1"], sharding_column="uid",
            properties={"sharding-count": 4},
        )
        schema = TableSchema(
            "t_user",
            [Column("uid", make_type("INT"), not_null=True), Column("name", make_type("VARCHAR", 32))],
            primary_key=["uid"],
        )
        created = create_physical_tables(rule, schema, sources)
        assert len(created) == 4
        assert sources["ds0"].database.table_names() == ["t_user_0", "t_user_2"]
        assert sources["ds1"].database.table_names() == ["t_user_1", "t_user_3"]

    def test_create_physical_tables_unknown_resource(self):
        rule = build_auto_table_rule(
            "t", ["ds_missing"], sharding_column="uid", properties={"sharding-count": 1}
        )
        schema = TableSchema("t", [Column("uid", make_type("INT"))])
        with pytest.raises(ShardingConfigError):
            create_physical_tables(rule, schema, {})


class TestDuplicateTableNamesAcrossSources:
    """Regression: grid layouts reuse actual table names across sources
    (ds0.t_0, ds1.t_0); routing must key nodes by (source, table)."""

    def make_rule(self):
        return TableRule(
            "t",
            [DataNode(ds, f"t_{j}") for ds in ("ds0", "ds1") for j in range(2)],
            database_strategy=StandardShardingStrategy("k", mod2()),
            table_strategy=StandardShardingStrategy("k", mod2()),
        )

    def test_point_route_lands_in_correct_source(self):
        rule = self.make_rule()
        nodes = rule.route({"k": ShardingValue("k", values=[2])})
        assert nodes == [DataNode("ds0", "t_0")]
        nodes = rule.route({"k": ShardingValue("k", values=[3])})
        assert nodes == [DataNode("ds1", "t_1")]

    def test_full_route_covers_every_node_once(self):
        rule = self.make_rule()
        nodes = rule.route({})
        assert len(nodes) == 4
        assert len(set(nodes)) == 4
        assert {n.data_source for n in nodes} == {"ds0", "ds1"}

    def test_auto_rule_rejects_duplicate_names(self):
        with pytest.raises(ShardingConfigError):
            TableRule(
                "t",
                [DataNode("ds0", "t_0"), DataNode("ds1", "t_0")],
                auto=True,
            )


class TestVerticalSharding:
    """Fig. 3's vertical quadrants: table-to-source assignment and
    wide-table column splitting."""

    def test_vertical_data_source_sharding_routes_whole_tables(self):
        from repro.engine import SQLEngine
        from repro.sharding import make_vertical_sharding

        sources = {"ds0": DataSource("ds0"), "ds1": DataSource("ds1")}
        rule = make_vertical_sharding({"t_user": "ds0", "t_order": "ds1"})
        engine = SQLEngine(sources, rule)
        engine.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(32))")
        engine.execute("CREATE TABLE t_order (oid INT PRIMARY KEY, uid INT)")
        assert sources["ds0"].database.has_table("t_user")
        assert not sources["ds0"].database.has_table("t_order")
        assert sources["ds1"].database.has_table("t_order")
        engine.execute("INSERT INTO t_user (uid, name) VALUES (1, 'a')")
        engine.execute("INSERT INTO t_order (oid, uid) VALUES (10, 1)")
        assert engine.execute("SELECT name FROM t_user WHERE uid = 1").fetchall() == [("a",)]
        assert engine.execute("SELECT oid FROM t_order").fetchall() == [(10,)]
        engine.close()

    def test_vertical_requires_assignments(self):
        from repro.sharding import make_vertical_sharding

        with pytest.raises(ShardingConfigError):
            make_vertical_sharding({})

    def test_split_table_vertically_paper_example(self):
        """t_user(uid, name, age, addr) -> t_user_v0(uid, name, age) +
        t_user_v1(uid, addr), as in Fig. 3(b)."""
        from repro.sharding import split_table_vertically

        source = DataSource("v")
        source.execute(
            "CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(32), "
            "age INT, addr VARCHAR(64))"
        )
        source.execute(
            "INSERT INTO t_user (uid, name, age, addr) VALUES "
            "(1, 'tom', 30, 'beijing'), (2, 'jerry', 28, 'shanghai')"
        )
        created = split_table_vertically(
            source, "t_user", [["name", "age"], ["addr"]], key_column="uid",
        )
        assert created == ["t_user_v0", "t_user_v1"]
        assert source.execute("SELECT uid, name, age FROM t_user_v0 ORDER BY uid") == [
            (1, "tom", 30), (2, "jerry", 28)
        ]
        assert source.execute("SELECT uid, addr FROM t_user_v1 ORDER BY uid") == [
            (1, "beijing"), (2, "shanghai")
        ]
        # the split tables stay joinable on the key
        rows = source.execute(
            "SELECT a.name, b.addr FROM t_user_v0 a JOIN t_user_v1 b ON a.uid = b.uid "
            "ORDER BY a.uid"
        )
        assert rows == [("tom", "beijing"), ("jerry", "shanghai")]

    def test_split_rejects_uncovered_columns(self):
        from repro.sharding import split_table_vertically

        source = DataSource("v2")
        source.execute("CREATE TABLE t (uid INT PRIMARY KEY, a INT, b INT)")
        with pytest.raises(ShardingConfigError, match="do not cover"):
            split_table_vertically(source, "t", [["a"]], key_column="uid")

    def test_split_can_drop_original(self):
        from repro.sharding import split_table_vertically

        source = DataSource("v3")
        source.execute("CREATE TABLE t (uid INT PRIMARY KEY, a INT)")
        split_table_vertically(source, "t", [["a"]], key_column="uid", drop_original=True)
        assert not source.database.has_table("t")
