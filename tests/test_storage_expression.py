"""Unit + property tests for expression evaluation (three-valued logic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ColumnNotFoundError
from repro.sql import parse_expression
from repro.storage.expression import UNKNOWN, evaluate, is_truthy, sort_key


def ev(text, row=None, params=()):
    return evaluate(parse_expression(text), row or {}, params)


class TestArithmetic:
    def test_basic(self):
        assert ev("1 + 2 * 3") == 7
        assert ev("(1 + 2) * 3") == 9
        assert ev("10 / 4") == 2.5
        assert ev("10 % 3") == 1
        assert ev("-5 + 2") == -3

    def test_division_by_zero_is_null(self):
        assert ev("1 / 0") is None
        assert ev("1 % 0") is None

    def test_null_propagates(self):
        assert ev("NULL + 1") is None
        assert ev("-x", {"x": None}) is None

    def test_string_concat_operator(self):
        assert ev("'a' || 'b'") == "ab"


class TestComparisons:
    def test_numeric(self):
        assert ev("2 < 3") is True
        assert ev("3 <= 3") is True
        assert ev("2 > 3") is False
        assert ev("2 <> 3") is True

    def test_cross_type_numeric_string(self):
        assert ev("2 = '2'") is True
        assert ev("'10' > 9") is True

    def test_null_comparison_is_unknown(self):
        assert ev("NULL = 1") is UNKNOWN
        assert ev("x < 5", {"x": None}) is UNKNOWN

    def test_null_safe_equals(self):
        assert ev("NULL <=> NULL") is True
        assert ev("1 <=> NULL") is False
        assert ev("1 <=> 1") is True


class TestBooleanLogic:
    def test_and_short_circuit_false(self):
        # FALSE AND UNKNOWN -> FALSE
        assert ev("1 = 2 AND NULL = 1") is False

    def test_and_unknown(self):
        assert ev("1 = 1 AND NULL = 1") is UNKNOWN

    def test_or_short_circuit_true(self):
        assert ev("1 = 1 OR NULL = 1") is True

    def test_or_unknown(self):
        assert ev("1 = 2 OR NULL = 1") is UNKNOWN

    def test_not_unknown(self):
        assert ev("NOT NULL = 1") is UNKNOWN

    def test_is_truthy_collapses(self):
        assert is_truthy(UNKNOWN) is False
        assert is_truthy(None) is False
        assert is_truthy(1) is True


class TestPredicates:
    def test_in(self):
        assert ev("2 IN (1, 2, 3)") is True
        assert ev("9 IN (1, 2)") is False
        assert ev("9 NOT IN (1, 2)") is True

    def test_in_with_null_member(self):
        assert ev("9 IN (1, NULL)") is UNKNOWN
        assert ev("1 IN (1, NULL)") is True

    def test_between(self):
        assert ev("5 BETWEEN 1 AND 10") is True
        assert ev("0 BETWEEN 1 AND 10") is False
        assert ev("0 NOT BETWEEN 1 AND 10") is True
        assert ev("NULL BETWEEN 1 AND 2") is UNKNOWN

    def test_like(self):
        assert ev("'hello' LIKE 'he%'") is True
        assert ev("'hello' LIKE 'h_llo'") is True
        assert ev("'hello' LIKE 'x%'") is False
        assert ev("'HELLO' LIKE 'he%'") is True  # case-insensitive, MySQL-style

    def test_like_escapes_regex_chars(self):
        assert ev("'a.c' LIKE 'a.c'") is True
        assert ev("'abc' LIKE 'a.c'") is False

    def test_is_null(self):
        assert ev("NULL IS NULL") is True
        assert ev("1 IS NULL") is False
        assert ev("1 IS NOT NULL") is True


class TestFunctions:
    def test_scalars(self):
        assert ev("ABS(-4)") == 4
        assert ev("LOWER('AbC')") == "abc"
        assert ev("UPPER('x')") == "X"
        assert ev("LENGTH('abc')") == 3
        assert ev("ROUND(2.567, 1)") == 2.6
        assert ev("FLOOR(2.9)") == 2
        assert ev("CEIL(2.1)") == 3
        assert ev("MOD(7, 3)") == 1
        assert ev("CONCAT('a', 1, 'b')") == "a1b"
        assert ev("SUBSTRING('hello', 2, 3)") == "ell"

    def test_coalesce_ifnull(self):
        assert ev("COALESCE(NULL, NULL, 5)") == 5
        assert ev("IFNULL(NULL, 'd')") == "d"
        assert ev("IFNULL(1, 'd')") == 1

    def test_cast(self):
        assert ev("CAST('12' AS INT)") == 12
        assert ev("CAST(3 AS CHAR)") == "3"

    def test_case(self):
        assert ev("CASE WHEN 1 = 1 THEN 'y' ELSE 'n' END") == "y"
        assert ev("CASE WHEN 1 = 2 THEN 'y' END") is None


class TestColumnResolution:
    def test_bare_and_qualified(self):
        row = {"uid": 5, "u.uid": 5, "name": "x"}
        assert ev("uid + 1", row) == 6
        assert ev("u.uid", row) == 5

    def test_case_insensitive_fallback(self):
        assert ev("UID", {"uid": 3}) == 3

    def test_qualified_fallback_by_suffix(self):
        assert ev("t.v", {"t.v": 9}) == 9

    def test_missing_column_raises(self):
        with pytest.raises(ColumnNotFoundError):
            ev("ghost", {"uid": 1})

    def test_placeholder(self):
        assert ev("? + ?", {}, (2, 3)) == 5


class TestSortKey:
    def test_nulls_sort_first(self):
        values = [3, None, 1, None, 2]
        assert sorted(values, key=sort_key) == [None, None, 1, 2, 3]

    def test_mixed_numbers(self):
        assert sorted([2.5, 1, 3], key=sort_key) == [1, 2.5, 3]

    def test_strings_after_numbers(self):
        out = sorted(["b", 2, "a", 1], key=sort_key)
        assert out == [1, 2, "a", "b"]


# -- property-based --------------------------------------------------------

small_ints = st.integers(min_value=-1000, max_value=1000)


@settings(max_examples=80, deadline=None)
@given(a=small_ints, b=small_ints, c=small_ints)
def test_between_equivalent_to_comparisons(a, b, c):
    expected = (min(b, c) if b <= c else b) <= a <= c if b <= c else False
    got = ev(f"{a} BETWEEN {b} AND {c}")
    assert got == (b <= a <= c)


@settings(max_examples=80, deadline=None)
@given(value=small_ints, items=st.lists(small_ints, min_size=1, max_size=8))
def test_in_equivalent_to_membership(value, items):
    rendered = ", ".join(str(i) for i in items)
    assert ev(f"{value} IN ({rendered})") == (value in items)


@settings(max_examples=80, deadline=None)
@given(a=small_ints, b=small_ints)
def test_comparison_trichotomy(a, b):
    lt = ev(f"{a} < {b}")
    eq = ev(f"{a} = {b}")
    gt = ev(f"{a} > {b}")
    assert [lt, eq, gt].count(True) == 1
