"""Tests for the Governor: registry, config management, health detection."""

import pytest

from repro.exceptions import BadVersionError, GovernanceError, NodeExistsError, NodeNotFoundError
from repro.governor import ConfigCenter, HealthDetector, Registry, ReplicaGroup
from repro.storage import DataSource


class TestRegistry:
    def test_create_and_get(self):
        reg = Registry()
        reg.create("/a/b/c", "v")
        assert reg.get("/a/b/c") == "v"
        assert reg.exists("/a/b")

    def test_create_duplicate_raises(self):
        reg = Registry()
        reg.create("/a", 1)
        with pytest.raises(NodeExistsError):
            reg.create("/a", 2)

    def test_get_missing_raises(self):
        with pytest.raises(NodeNotFoundError):
            Registry().get("/nope")

    def test_set_creates_or_updates_with_version(self):
        reg = Registry()
        reg.set("/x", 1)
        _, v0 = reg.get_with_version("/x")
        v1 = reg.set("/x", 2)
        assert v1 == v0 + 1
        assert reg.get("/x") == 2

    def test_optimistic_version_check(self):
        reg = Registry()
        reg.set("/x", 1)
        with pytest.raises(BadVersionError):
            reg.set("/x", 2, expected_version=99)

    def test_children_sorted(self):
        reg = Registry()
        reg.create("/p/b", 1)
        reg.create("/p/a", 2)
        assert reg.children("/p") == ["a", "b"]

    def test_delete_subtree(self):
        reg = Registry()
        reg.create("/p/a/deep", 1)
        reg.delete("/p")
        assert not reg.exists("/p/a/deep")

    def test_data_watch_fires_on_change(self):
        reg = Registry()
        events = []
        reg.set("/w", 1)
        reg.watch("/w", lambda e, p, v: events.append((e, v)))
        reg.set("/w", 2)
        assert events == [("changed", 2)]

    def test_child_watch_fires_on_add_and_remove(self):
        reg = Registry()
        events = []
        reg.create("/parent", None)
        reg.watch_children("/parent", lambda e, p, v: events.append(v))
        reg.create("/parent/kid", 1)
        reg.delete("/parent/kid")
        assert events == ["kid", "kid"]

    def test_unsubscribe(self):
        reg = Registry()
        events = []
        reg.set("/w", 1)
        unsub = reg.watch("/w", lambda e, p, v: events.append(v))
        unsub()
        reg.set("/w", 2)
        assert events == []

    def test_ephemeral_nodes_die_with_session(self):
        reg = Registry()
        session = reg.session()
        reg.create("/live/instance-1", "meta", session=session)
        assert reg.exists("/live/instance-1")
        session.close()
        assert not reg.exists("/live/instance-1")

    def test_ephemeral_removal_fires_child_watch(self):
        reg = Registry()
        events = []
        reg.create("/live", None)
        reg.watch_children("/live", lambda e, p, v: events.append(v))
        with reg.session() as session:
            reg.create("/live/i1", None, session=session)
        assert events == ["i1", "i1"]

    def test_dump(self):
        reg = Registry()
        reg.create("/a/b", 1)
        reg.create("/a/c", 2)
        assert reg.dump("/a") == {"/a/b": 1, "/a/c": 2}


class TestConfigCenter:
    def test_data_source_roundtrip(self):
        cc = ConfigCenter()
        cc.register_data_source("ds0", {"dialect": "MySQL", "host": "h1"})
        assert cc.data_source_metadata("ds0")["dialect"] == "MySQL"
        assert cc.data_source_names() == ["ds0"]
        cc.remove_data_source("ds0")
        assert cc.data_source_names() == []

    def test_missing_data_source_raises(self):
        with pytest.raises(GovernanceError):
            ConfigCenter().data_source_metadata("nope")

    def test_rule_roundtrip(self):
        cc = ConfigCenter()
        cc.store_rule("sharding", "t_user", {"column": "uid", "type": "MOD"})
        assert cc.load_rule("sharding", "t_user")["column"] == "uid"
        assert cc.rule_names("sharding") == ["t_user"]
        cc.drop_rule("sharding", "t_user")
        assert cc.rule_names("sharding") == []

    def test_drop_missing_rule_raises(self):
        with pytest.raises(GovernanceError):
            ConfigCenter().drop_rule("sharding", "ghost")

    def test_rule_watch_propagates(self):
        cc = ConfigCenter()
        seen = []
        cc.watch_rules("sharding", lambda e, p, v: seen.append(v))
        cc.store_rule("sharding", "t_new", {})
        assert seen == ["t_new"]

    def test_props(self):
        cc = ConfigCenter()
        cc.set_prop("max_connections_per_query", 5)
        assert cc.get_prop("max_connections_per_query") == 5
        assert cc.get_prop("missing", 1) == 1
        assert cc.props() == {"max_connections_per_query": 5}

    def test_instance_registration_is_ephemeral(self):
        cc = ConfigCenter()
        session = cc.register_instance("proxy-1", {"port": 3307})
        assert cc.online_instances() == ["proxy-1"]
        session.close()
        assert cc.online_instances() == []


class TestHealthDetector:
    def make(self, groups=None):
        sources = {name: DataSource(name) for name in ("p0", "r0", "r1")}
        for ds in sources.values():
            ds.execute("CREATE TABLE t (a INT)")
        cc = ConfigCenter()
        detector = HealthDetector(sources, cc, groups=groups, interval=0.01)
        return sources, cc, detector

    def test_all_healthy(self):
        sources, cc, detector = self.make()
        statuses = detector.check_once()
        assert all(statuses.values())
        assert cc.get_status("datasource/p0") == "UP"

    def test_failure_marks_down(self):
        sources, cc, detector = self.make()
        sources["r0"].database.fail_next("statement", times=100)
        statuses = detector.check_once()
        assert statuses["r0"] is False
        assert cc.get_status("datasource/r0") == "DOWN"
        assert not detector.is_up("r0")

    def test_primary_failover_promotes_replica(self):
        group = ReplicaGroup("g0", primary="p0", replicas=["r0", "r1"])
        sources, cc, detector = self.make(groups=[group])
        promoted = []
        detector.add_failover_listener(lambda g, old, new: promoted.append((old, new)))
        sources["p0"].database.fail_next("statement", times=100)
        detector.check_once()
        assert promoted == [("p0", "r0")]
        assert group.primary == "r0"
        assert "p0" in group.replicas
        stored = cc.load_rule("readwrite_splitting", "g0")
        assert stored["primary"] == "r0"

    def test_background_thread_runs(self):
        import time

        sources, cc, detector = self.make()
        detector.start()
        time.sleep(0.1)
        detector.stop()
        assert cc.get_status("datasource/p0") == "UP"

    def test_recovered_source_marked_up(self):
        sources, cc, detector = self.make()
        sources["r1"].database.fail_next("statement", times=1)
        detector.check_once()
        assert not detector.is_up("r1")
        detector.check_once()  # injection consumed; healthy again
        assert detector.is_up("r1")
        assert cc.get_status("datasource/r1") == "UP"

    def test_failover_event_records_latency(self):
        group = ReplicaGroup("g0", primary="p0", replicas=["r0", "r1"])
        sources, cc, detector = self.make(groups=[group])
        sources["p0"].database.fail_next("statement", times=100)
        detector.check_once()
        assert len(detector.failover_events) == 1
        event = detector.failover_events[0]
        assert event.group == "g0"
        assert event.old_primary == "p0"
        assert event.new_primary == "r0"
        assert event.promoted_at >= event.detected_at
        assert 0.0 <= event.latency < 5.0

    def test_no_failover_event_without_promotion(self):
        sources, cc, detector = self.make()  # no groups configured
        sources["r0"].database.fail_next("statement", times=100)
        detector.check_once()
        assert detector.failover_events == []
