"""Combination tests: multiple features + sharding + transactions at once.

The paper's "Pluggable" claim is that features compose freely; these tests
stack them on a sharded deployment and verify each still works.
"""

import pytest

from repro.engine import SQLEngine
from repro.features import (
    EncryptColumn,
    EncryptFeature,
    EncryptRule,
    ReadWriteGroup,
    ReadWriteSplittingFeature,
    ShadowFeature,
    ShadowRule,
    ThrottleFeature,
    XorStreamEncryptor,
)
from repro.sharding import ShardingRule, build_auto_table_rule, create_physical_tables
from repro.storage import Column, DataSource, TableSchema, make_type


@pytest.fixture
def stack():
    """Sharded (2 shards) + encrypted + shadow + rw-split deployment."""
    sources = {
        name: DataSource(name)
        for name in ("ds0", "ds1", "ds0_replica", "ds1_replica", "ds0_shadow", "ds1_shadow")
    }
    schema = TableSchema(
        "t_user",
        [
            Column("uid", make_type("INT"), not_null=True),
            Column("phone_cipher", make_type("VARCHAR", 128)),
            Column("is_shadow", make_type("BOOLEAN"), default=False),
        ],
        primary_key=["uid"],
    )
    rule_obj = build_auto_table_rule(
        "t_user", ["ds0", "ds1"], sharding_column="uid",
        algorithm_type="MOD", properties={"sharding-count": 2},
    )
    for suffix in ("", "_replica", "_shadow"):
        mapping = {f"ds{i}{suffix}": sources[f"ds{i}{suffix}"] for i in range(2)}
        renamed = {name.replace(suffix, ""): source for name, source in mapping.items()}
        create_physical_tables(rule_obj, schema, renamed)

    encrypt_rule = EncryptRule()
    encrypt_rule.add("t_user", EncryptColumn("phone", "phone_cipher", XorStreamEncryptor("k")))
    rwsplit = ReadWriteSplittingFeature(
        [
            ReadWriteGroup("ds0", primary="ds0", replicas=["ds0_replica"]),
            ReadWriteGroup("ds1", primary="ds1", replicas=["ds1_replica"]),
        ]
    )
    shadow = ShadowFeature(ShadowRule(mapping={"ds0": "ds0_shadow", "ds1": "ds1_shadow"}))
    engine = SQLEngine(
        sources,
        ShardingRule([rule_obj], default_data_source="ds0"),
        features=[EncryptFeature(encrypt_rule), shadow, rwsplit],
        max_connections_per_query=4,
    )
    yield sources, engine, rwsplit
    engine.close()


class TestFeatureComposition:
    def test_encrypted_sharded_write_goes_to_right_shard(self, stack):
        sources, engine, rwsplit = stack
        engine.execute("INSERT INTO t_user (uid, phone) VALUES (3, '555-0101')")
        stored = sources["ds1"].execute("SELECT phone_cipher FROM t_user_1")
        assert stored and stored[0][0] != "555-0101"
        assert sources["ds0"].execute("SELECT COUNT(*) FROM t_user_0") == [(0,)]

    def test_read_from_replica_decrypts(self, stack):
        sources, engine, rwsplit = stack
        engine.execute("INSERT INTO t_user (uid, phone) VALUES (3, '555-0101')")
        cipher = sources["ds1"].execute("SELECT phone_cipher FROM t_user_1")[0][0]
        sources["ds1_replica"].execute(
            f"INSERT INTO t_user_1 (uid, phone_cipher) VALUES (3, '{cipher}')"
        )
        rows = engine.execute("SELECT phone FROM t_user WHERE uid = 3").fetchall()
        assert rows == [("555-0101",)]
        assert rwsplit.reads_routed >= 1

    def test_shadow_write_hits_shadow_shard(self, stack):
        sources, engine, rwsplit = stack
        engine.execute(
            "INSERT INTO t_user (uid, phone, is_shadow) VALUES (4, '555-9999', TRUE)"
        )
        assert sources["ds0_shadow"].execute("SELECT COUNT(*) FROM t_user_0") == [(1,)]
        assert sources["ds0"].execute("SELECT COUNT(*) FROM t_user_0") == [(0,)]
        # shadow row is still encrypted
        cipher = sources["ds0_shadow"].execute("SELECT phone_cipher FROM t_user_0")[0][0]
        assert cipher != "555-9999"

    def test_cross_shard_read_spans_replicas(self, stack):
        sources, engine, rwsplit = stack
        for replica in ("ds0_replica", "ds1_replica"):
            shard = replica[2]
            sources[replica].execute(
                f"INSERT INTO t_user_{shard} (uid, phone_cipher) VALUES ({shard}0, 'x')"
            )
        rows = engine.execute("SELECT uid FROM t_user ORDER BY uid").fetchall()
        assert rows == [(0,), (10,)]

    def test_feature_removal_restores_behaviour(self, stack):
        sources, engine, rwsplit = stack
        engine.remove_feature("readwrite_splitting")
        engine.execute("INSERT INTO t_user (uid, phone) VALUES (2, '555-1')")
        rows = engine.execute("SELECT uid FROM t_user WHERE uid = 2").fetchall()
        assert rows == [(2,)]  # read now hits the primary where the row lives


class TestThrottleWithTransactions:
    def test_throttle_rejects_mid_burst_without_breaking_engine(self):
        source = DataSource("solo")
        source.execute("CREATE TABLE t (a INT)")
        engine = SQLEngine(
            {"solo": source}, ShardingRule(default_data_source="solo"),
            features=[ThrottleFeature(rate=0.001, burst=3)],
        )
        from repro.exceptions import ThrottledError

        for _ in range(3):
            engine.execute("SELECT COUNT(*) FROM t").fetchall()
        with pytest.raises(ThrottledError):
            engine.execute("SELECT COUNT(*) FROM t")
        engine.close()
