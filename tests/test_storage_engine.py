"""Integration tests for the embedded storage engine via connections."""

import threading

import pytest

from repro.exceptions import (
    ConnectionClosedError,
    ConnectionPoolExhaustedError,
    DuplicateKeyError,
    ExecutionError,
    TableAlreadyExistsError,
    TableNotFoundError,
    TransactionError,
)
from repro.storage import DataSource


@pytest.fixture
def ds():
    source = DataSource("ds_test")
    conn = source.connect()
    conn.execute("CREATE TABLE t_user (uid INT PRIMARY KEY, name VARCHAR(64), age INT)")
    conn.execute(
        "INSERT INTO t_user (uid, name, age) VALUES "
        "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35), (4, 'dave', 25)"
    )
    source.release(conn)
    return source


class TestSelect:
    def test_point_select_uses_pk(self, ds):
        rows = ds.execute("SELECT name FROM t_user WHERE uid = 2")
        assert rows == [("bob",)]

    def test_in_select(self, ds):
        rows = ds.execute("SELECT uid FROM t_user WHERE uid IN (1, 3) ORDER BY uid")
        assert rows == [(1,), (3,)]

    def test_between_select(self, ds):
        rows = ds.execute("SELECT uid FROM t_user WHERE uid BETWEEN 2 AND 3 ORDER BY uid")
        assert rows == [(2,), (3,)]

    def test_range_comparison(self, ds):
        rows = ds.execute("SELECT uid FROM t_user WHERE uid > 2 ORDER BY uid")
        assert rows == [(3,), (4,)]

    def test_non_indexed_filter_scans(self, ds):
        rows = ds.execute("SELECT name FROM t_user WHERE age = 25 ORDER BY name")
        assert rows == [("bob",), ("dave",)]

    def test_order_by_desc(self, ds):
        rows = ds.execute("SELECT uid FROM t_user ORDER BY age DESC, uid")
        assert rows == [(3,), (1,), (2,), (4,)]

    def test_limit_offset(self, ds):
        rows = ds.execute("SELECT uid FROM t_user ORDER BY uid LIMIT 2 OFFSET 1")
        assert rows == [(2,), (3,)]

    def test_projection_expression(self, ds):
        rows = ds.execute("SELECT age * 2 FROM t_user WHERE uid = 1")
        assert rows == [(60,)]

    def test_alias_in_order_by(self, ds):
        rows = ds.execute("SELECT age AS a FROM t_user ORDER BY a LIMIT 1")
        assert rows == [(25,)]

    def test_like(self, ds):
        rows = ds.execute("SELECT name FROM t_user WHERE name LIKE '%a%' ORDER BY name")
        assert rows == [("alice",), ("carol",), ("dave",)]

    def test_distinct(self, ds):
        rows = ds.execute("SELECT DISTINCT age FROM t_user ORDER BY age")
        assert rows == [(25,), (30,), (35,)]

    def test_select_star_column_order(self, ds):
        conn = ds.connect()
        cur = conn.execute("SELECT * FROM t_user WHERE uid = 1")
        assert cur.columns == ["uid", "name", "age"]
        ds.release(conn)

    def test_count_star(self, ds):
        assert ds.execute("SELECT COUNT(*) FROM t_user") == [(4,)]

    def test_aggregates(self, ds):
        rows = ds.execute("SELECT MIN(age), MAX(age), SUM(age), AVG(age) FROM t_user")
        assert rows == [(25, 35, 115, 28.75)]

    def test_aggregate_empty_input(self, ds):
        rows = ds.execute("SELECT COUNT(*), SUM(age) FROM t_user WHERE uid = 999")
        assert rows == [(0, None)]

    def test_group_by(self, ds):
        rows = ds.execute(
            "SELECT age, COUNT(*) FROM t_user GROUP BY age ORDER BY age"
        )
        assert rows == [(25, 2), (30, 1), (35, 1)]

    def test_group_by_having(self, ds):
        rows = ds.execute(
            "SELECT age, COUNT(*) FROM t_user GROUP BY age HAVING COUNT(*) > 1"
        )
        assert rows == [(25, 2)]

    def test_placeholders(self, ds):
        conn = ds.connect()
        cur = conn.execute("SELECT name FROM t_user WHERE uid = ?", (3,))
        assert cur.fetchall() == [("carol",)]
        ds.release(conn)

    def test_null_semantics_where(self, ds):
        conn = ds.connect()
        conn.execute("INSERT INTO t_user (uid, name, age) VALUES (9, 'nil', NULL)")
        # NULL never matches comparisons...
        assert conn.execute("SELECT uid FROM t_user WHERE age <> 25 ORDER BY uid").fetchall() == [(1,), (3,)]
        # ...but IS NULL finds it.
        assert conn.execute("SELECT uid FROM t_user WHERE age IS NULL").fetchall() == [(9,)]
        ds.release(conn)


class TestJoins:
    @pytest.fixture
    def ds2(self, ds):
        conn = ds.connect()
        conn.execute("CREATE TABLE t_order (oid INT PRIMARY KEY, uid INT, amount FLOAT)")
        conn.execute(
            "INSERT INTO t_order (oid, uid, amount) VALUES "
            "(10, 1, 5.0), (11, 1, 7.5), (12, 2, 3.0), (13, 99, 1.0)"
        )
        ds.release(conn)
        return ds

    def test_inner_join(self, ds2):
        rows = ds2.execute(
            "SELECT u.name, o.amount FROM t_user u JOIN t_order o ON u.uid = o.uid "
            "ORDER BY o.amount"
        )
        assert rows == [("bob", 3.0), ("alice", 5.0), ("alice", 7.5)]

    def test_left_join_produces_nulls(self, ds2):
        rows = ds2.execute(
            "SELECT u.name, o.oid FROM t_user u LEFT JOIN t_order o ON u.uid = o.uid "
            "WHERE o.oid IS NULL ORDER BY u.name"
        )
        assert rows == [("carol", None), ("dave", None)]

    def test_join_with_group_by(self, ds2):
        rows = ds2.execute(
            "SELECT u.name, SUM(o.amount) FROM t_user u JOIN t_order o ON u.uid = o.uid "
            "GROUP BY u.name ORDER BY u.name"
        )
        assert rows == [("alice", 12.5), ("bob", 3.0)]

    def test_cross_join_count(self, ds2):
        rows = ds2.execute("SELECT COUNT(*) FROM t_user CROSS JOIN t_order")
        assert rows == [(16,)]

    def test_join_filter_on_left_table(self, ds2):
        rows = ds2.execute(
            "SELECT o.oid FROM t_user u JOIN t_order o ON u.uid = o.uid "
            "WHERE u.uid = 1 ORDER BY o.oid"
        )
        assert rows == [(10,), (11,)]


class TestDML:
    def test_insert_rowcount(self, ds):
        conn = ds.connect()
        cur = conn.execute("INSERT INTO t_user (uid, name, age) VALUES (5, 'eve', 20), (6, 'frank', 21)")
        assert cur.rowcount == 2
        ds.release(conn)

    def test_duplicate_pk_rejected(self, ds):
        conn = ds.connect()
        with pytest.raises(DuplicateKeyError):
            conn.execute("INSERT INTO t_user (uid, name, age) VALUES (1, 'dup', 1)")
        # Table unchanged after the failed autocommit statement.
        assert conn.execute("SELECT COUNT(*) FROM t_user").fetchall() == [(4,)]
        ds.release(conn)

    def test_update_with_expression(self, ds):
        conn = ds.connect()
        cur = conn.execute("UPDATE t_user SET age = age + 1 WHERE age = 25")
        assert cur.rowcount == 2
        assert conn.execute("SELECT COUNT(*) FROM t_user WHERE age = 26").fetchall() == [(2,)]
        ds.release(conn)

    def test_update_pk_reindexes(self, ds):
        conn = ds.connect()
        conn.execute("UPDATE t_user SET uid = 100 WHERE uid = 1")
        assert conn.execute("SELECT name FROM t_user WHERE uid = 100").fetchall() == [("alice",)]
        assert conn.execute("SELECT COUNT(*) FROM t_user WHERE uid = 1").fetchall() == [(0,)]
        ds.release(conn)

    def test_delete(self, ds):
        conn = ds.connect()
        cur = conn.execute("DELETE FROM t_user WHERE age = 25")
        assert cur.rowcount == 2
        assert conn.execute("SELECT COUNT(*) FROM t_user").fetchall() == [(2,)]
        ds.release(conn)

    def test_auto_increment(self, ds):
        conn = ds.connect()
        conn.execute("CREATE TABLE seq_t (id INT PRIMARY KEY AUTO_INCREMENT, v INT)")
        conn.execute("INSERT INTO seq_t (v) VALUES (10)")
        conn.execute("INSERT INTO seq_t (v) VALUES (20)")
        rows = conn.execute("SELECT id, v FROM seq_t ORDER BY id").fetchall()
        assert rows == [(1, 10), (2, 20)]
        ds.release(conn)

    def test_truncate(self, ds):
        conn = ds.connect()
        cur = conn.execute("TRUNCATE TABLE t_user")
        assert cur.rowcount == 4
        assert conn.execute("SELECT COUNT(*) FROM t_user").fetchall() == [(0,)]
        ds.release(conn)


class TestDDL:
    def test_create_duplicate_rejected(self, ds):
        conn = ds.connect()
        with pytest.raises(TableAlreadyExistsError):
            conn.execute("CREATE TABLE t_user (x INT)")
        conn.execute("CREATE TABLE IF NOT EXISTS t_user (x INT)")  # tolerated
        ds.release(conn)

    def test_drop_missing_table(self, ds):
        conn = ds.connect()
        with pytest.raises(TableNotFoundError):
            conn.execute("DROP TABLE nope")
        conn.execute("DROP TABLE IF EXISTS nope")
        ds.release(conn)

    def test_secondary_index_supports_lookup(self, ds):
        conn = ds.connect()
        conn.execute("CREATE INDEX idx_age ON t_user (age)")
        table = ds.database.table("t_user")
        assert "age" in table.indexed_columns()
        assert conn.execute("SELECT COUNT(*) FROM t_user WHERE age = 25").fetchall() == [(2,)]
        ds.release(conn)


class TestTransactions:
    def test_commit_persists(self, ds):
        conn = ds.connect()
        conn.begin()
        conn.execute("UPDATE t_user SET age = 99 WHERE uid = 1")
        conn.commit()
        assert ds.execute("SELECT age FROM t_user WHERE uid = 1") == [(99,)]
        ds.release(conn)

    def test_rollback_restores_all_mutation_kinds(self, ds):
        conn = ds.connect()
        conn.begin()
        conn.execute("INSERT INTO t_user (uid, name, age) VALUES (7, 'gus', 40)")
        conn.execute("UPDATE t_user SET age = 0 WHERE uid = 1")
        conn.execute("DELETE FROM t_user WHERE uid = 2")
        conn.rollback()
        rows = dict(
            (uid, age) for uid, age in ds.execute("SELECT uid, age FROM t_user")
        )
        assert rows == {1: 30, 2: 25, 3: 35, 4: 25}
        ds.release(conn)

    def test_nested_begin_rejected(self, ds):
        conn = ds.connect()
        conn.begin()
        with pytest.raises(TransactionError):
            conn.begin()
        conn.rollback()
        ds.release(conn)

    def test_close_rolls_back_open_transaction(self, ds):
        conn = ds.connect_raw()
        conn.begin()
        conn.execute("DELETE FROM t_user")
        conn.close()
        assert ds.execute("SELECT COUNT(*) FROM t_user") == [(4,)]

    def test_closed_connection_rejects_work(self, ds):
        conn = ds.connect_raw()
        conn.close()
        with pytest.raises(ConnectionClosedError):
            conn.execute("SELECT 1")

    def test_sql_level_transaction_control(self, ds):
        conn = ds.connect()
        conn.execute("BEGIN")
        conn.execute("DELETE FROM t_user WHERE uid = 1")
        conn.execute("ROLLBACK")
        assert ds.execute("SELECT COUNT(*) FROM t_user") == [(4,)]
        ds.release(conn)


class TestXA:
    def test_prepare_then_commit(self, ds):
        conn = ds.connect()
        conn.begin()
        conn.execute("UPDATE t_user SET age = 77 WHERE uid = 3")
        conn.xa_prepare("xid-a")
        assert ds.database.prepared_xids() == ["xid-a"]
        conn.xa_commit("xid-a")
        assert ds.database.prepared_xids() == []
        assert ds.execute("SELECT age FROM t_user WHERE uid = 3") == [(77,)]
        ds.release(conn)

    def test_prepare_then_rollback(self, ds):
        conn = ds.connect()
        conn.begin()
        conn.execute("UPDATE t_user SET age = 77 WHERE uid = 3")
        conn.xa_prepare("xid-b")
        conn.xa_rollback("xid-b")
        assert ds.execute("SELECT age FROM t_user WHERE uid = 3") == [(35,)]
        ds.release(conn)

    def test_prepared_survives_connection_close(self, ds):
        conn = ds.connect_raw()
        conn.begin()
        conn.execute("UPDATE t_user SET age = 55 WHERE uid = 4")
        conn.xa_prepare("xid-c")
        conn.close()
        # Another connection (a recovering coordinator) completes the xid.
        other = ds.connect()
        other.xa_commit("xid-c")
        assert ds.execute("SELECT age FROM t_user WHERE uid = 4") == [(55,)]
        ds.release(other)

    def test_commit_unknown_xid_is_idempotent(self, ds):
        conn = ds.connect()
        conn.xa_commit("never-seen")  # no error
        ds.release(conn)

    def test_injected_prepare_failure(self, ds):
        conn = ds.connect()
        conn.begin()
        conn.execute("UPDATE t_user SET age = 11 WHERE uid = 1")
        ds.database.fail_next("prepare")
        with pytest.raises(ExecutionError):
            conn.xa_prepare("xid-fail")
        conn.rollback()
        assert ds.execute("SELECT age FROM t_user WHERE uid = 1") == [(30,)]
        ds.release(conn)


class TestPool:
    def test_acquire_release_cycle(self, ds):
        first = ds.connect()
        ds.release(first)
        second = ds.connect()
        assert second is first  # reused
        ds.release(second)

    def test_exhaustion_times_out(self):
        source = DataSource("tiny", pool_size=1)
        held = source.connect()
        with pytest.raises(ConnectionPoolExhaustedError):
            source.pool.acquire(timeout=0.05)
        source.release(held)

    def test_try_acquire_many_all_or_nothing(self):
        source = DataSource("many", pool_size=3)
        batch = source.pool.try_acquire_many(3)
        assert batch is not None and len(batch) == 3
        assert source.pool.try_acquire_many(1) is None
        source.pool.release_many(batch)
        assert source.pool.in_use == 0

    def test_release_rolls_back(self, ds):
        conn = ds.connect()
        conn.begin()
        conn.execute("DELETE FROM t_user")
        ds.release(conn)
        assert ds.execute("SELECT COUNT(*) FROM t_user") == [(4,)]

    def test_waiters_wake_on_release(self):
        source = DataSource("wake", pool_size=1)
        held = source.connect()
        got = []

        def waiter():
            conn = source.pool.acquire(timeout=2.0)
            got.append(conn)
            source.release(conn)

        thread = threading.Thread(target=waiter)
        thread.start()
        source.release(held)
        thread.join(timeout=2.0)
        assert got


class TestUnsupportedShapes:
    def test_right_join_rejected_with_guidance(self, ds):
        from repro.exceptions import UnsupportedSQLError

        conn = ds.connect()
        conn.execute("CREATE TABLE t_r (uid INT PRIMARY KEY)")
        with pytest.raises(UnsupportedSQLError, match="LEFT JOIN"):
            conn.execute("SELECT * FROM t_user u RIGHT JOIN t_r r ON u.uid = r.uid").fetchall()
        ds.release(conn)
