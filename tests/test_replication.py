"""Replica groups, lag-aware routing, promotion and the result cache.

Covers the replication storage layer (log / lag / convergence /
promotion), the consistency-aware rwsplit routing above it
(read-your-writes tokens, lag-aware balancers, breaker exclusion), the
epoch-invalidated result cache, and the DistSQL observability surfaces.
"""

import threading
import time

import pytest

from repro.adaptors import ShardingDataSource, ShardingRuntime
from repro.distsql import execute_distsql
from repro.engine import SQLEngine
from repro.engine.pipeline import Feature
from repro.engine.result_cache import ResultCache
from repro.exceptions import DataSourceUnavailableError
from repro.features import (
    BoundedStalenessLoadBalancer,
    LeastLagLoadBalancer,
    ReadWriteGroup,
    ReadWriteSplittingFeature,
    RoundRobinLoadBalancer,
)
from repro.governor import ConfigCenter, HealthDetector
from repro.governor import ReplicaGroup as GovReplicaGroup
from repro.sharding import ShardingRule
from repro.storage import DataSource, FaultInjector, ReplicaGroup
from repro.storage.replication import pin_primary, reset_session, session_token


@pytest.fixture(autouse=True)
def fresh_session():
    """Causal tokens are thread-local; tests must not leak them."""
    reset_session()
    yield
    reset_session()


def make_storage_group(replica_lags=(0.0, 0.0), seed_rows=4):
    """Primary + replicas sharing one replicated table, fully synced."""
    primary = DataSource("prim")
    group = ReplicaGroup(primary, seed=1)
    sources = {"prim": primary}
    primary.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(seed_rows):
        primary.execute(f"INSERT INTO t (id, v) VALUES ({i}, {i * 10})")
    for i, lag in enumerate(replica_lags):
        replica = DataSource(f"rep{i}")
        sources[replica.name] = replica
        group.add_replica(replica, lag=lag)
    group.sync()
    return sources, group


# ---------------------------------------------------------------------------
# Storage layer: log, lag, convergence
# ---------------------------------------------------------------------------


class TestReplicationLog:
    def test_commits_publish_dense_lsns_and_stamp_token(self):
        sources, group = make_storage_group()
        base = group.last_lsn()
        sources["prim"].execute("INSERT INTO t (id, v) VALUES (100, 1)")
        sources["prim"].execute("UPDATE t SET v = 2 WHERE id = 100")
        assert group.last_lsn() == base + 2
        # autocommit runs on this thread: the causal token tracks the tip
        assert session_token("prim") == group.last_lsn()

    def test_lagging_replica_stays_stale_then_converges(self):
        sources, group = make_storage_group(replica_lags=(0.05,))
        sources["prim"].execute("UPDATE t SET v = 999 WHERE id = 0")
        token = session_token("prim")
        # not due yet: reads on the replica still see the old image
        assert not group.covers("rep0", token)
        assert sources["rep0"].execute("SELECT v FROM t WHERE id = 0") == [(0,)]
        assert group.lag_records("rep0") == 1
        time.sleep(0.06)
        assert group.covers("rep0", token)
        assert sources["rep0"].execute("SELECT v FROM t WHERE id = 0") == [(999,)]
        assert group.lag_records("rep0") == 0

    def test_concurrent_writers_converge_on_replicas(self):
        sources, group = make_storage_group(replica_lags=(0.0,), seed_rows=0)

        def writer(offset):
            for i in range(25):
                sources["prim"].execute(
                    f"INSERT INTO t (id, v) VALUES ({offset + i}, {offset + i})"
                )

        threads = [threading.Thread(target=writer, args=(k * 100,)) for k in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        group.sync()
        want = sorted(sources["prim"].execute("SELECT id, v FROM t"))
        assert len(want) == 100
        assert sorted(sources["rep0"].execute("SELECT id, v FROM t")) == want

    def test_ddl_replicates(self):
        sources, group = make_storage_group(replica_lags=(0.0,))
        sources["prim"].execute("CREATE TABLE t2 (id INT PRIMARY KEY)")
        sources["prim"].execute("INSERT INTO t2 (id) VALUES (7)")
        sources["prim"].execute("TRUNCATE TABLE t")
        group.sync()
        assert sources["rep0"].execute("SELECT id FROM t2") == [(7,)]
        assert sources["rep0"].execute("SELECT * FROM t") == []

    def test_lag_report_shape(self):
        sources, group = make_storage_group(replica_lags=(0.0, 30.0))
        sources["prim"].execute("INSERT INTO t (id, v) VALUES (50, 5)")
        report = {row["replica"]: row for row in group.lag_report()}
        assert set(report) == {"rep0", "rep1"}
        assert report["rep1"]["lag_records"] == 1
        assert report["rep1"]["configured_lag_s"] == 30.0
        assert report["rep0"]["last_lsn"] == group.last_lsn()

    def test_replica_rejects_writes(self):
        sources, _ = make_storage_group(replica_lags=(0.0,))
        with pytest.raises(DataSourceUnavailableError):
            sources["rep0"].execute("INSERT INTO t (id, v) VALUES (9, 9)")


class TestPromotion:
    def test_promotes_most_caught_up_and_keeps_every_write(self):
        sources, group = make_storage_group(replica_lags=(60.0, 60.0))
        for i in range(100, 110):
            sources["prim"].execute(f"INSERT INTO t (id, v) VALUES ({i}, {i})")
        # rep1 is further ahead than rep0 at failover time
        group.states["rep1"].apply_all()
        want = sorted(sources["prim"].execute("SELECT id, v FROM t"))

        event = group.promote()
        assert event.new_primary == "rep1"
        assert group.primary is sources["rep1"]
        # the durable log was drained into the new primary: nothing lost
        assert sorted(sources["rep1"].execute("SELECT id, v FROM t")) == want
        # the old primary is fenced against writes
        assert sources["prim"].fenced
        with pytest.raises(DataSourceUnavailableError):
            sources["prim"].execute("INSERT INTO t (id, v) VALUES (999, 0)")
        # the survivor keeps streaming from the same log
        sources["rep1"].execute("INSERT INTO t (id, v) VALUES (999, 1)")
        group.states["rep0"].apply_all()
        assert sources["rep0"].execute("SELECT v FROM t WHERE id = 999") == [(1,)]

    def test_promote_without_candidates_raises(self):
        sources, group = make_storage_group(replica_lags=(0.0,))
        with pytest.raises(DataSourceUnavailableError):
            group.promote(is_up=lambda name: False)


# ---------------------------------------------------------------------------
# Load balancers
# ---------------------------------------------------------------------------


class TestLagAwareBalancers:
    def test_round_robin_lock_free_under_threads(self):
        lb = RoundRobinLoadBalancer()
        picks = []

        def spin():
            local = [lb.choose(["a", "b", "c"]) for _ in range(500)]
            picks.extend(local)

        threads = [threading.Thread(target=spin) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(picks) == 2000
        counts = {name: picks.count(name) for name in ("a", "b", "c")}
        assert all(count > 0 for count in counts.values())

    def test_least_lag_prefers_caught_up_replica(self):
        sources, group = make_storage_group(replica_lags=(0.0, 60.0))
        sources["prim"].execute("INSERT INTO t (id, v) VALUES (100, 0)")
        group.states["rep0"].apply_all()
        rw = ReadWriteGroup("prim", primary="prim", replicas=["rep0", "rep1"],
                            replication=group)
        lb = LeastLagLoadBalancer()
        assert all(
            lb.choose_with(["rep0", "rep1"], rw) == "rep0" for _ in range(5)
        )

    def test_least_lag_rotates_ties(self):
        sources, group = make_storage_group(replica_lags=(0.0, 0.0))
        rw = ReadWriteGroup("prim", primary="prim", replicas=["rep0", "rep1"],
                            replication=group)
        lb = LeastLagLoadBalancer()
        picks = {lb.choose_with(["rep0", "rep1"], rw) for _ in range(4)}
        assert picks == {"rep0", "rep1"}

    def test_bounded_staleness_falls_back_when_all_stale(self):
        sources, group = make_storage_group(replica_lags=(60.0, 60.0))
        sources["prim"].execute("INSERT INTO t (id, v) VALUES (100, 0)")
        time.sleep(0.01)  # the unapplied record ages past the budget
        rw = ReadWriteGroup("prim", primary="prim", replicas=["rep0", "rep1"],
                            replication=group)
        lb = BoundedStalenessLoadBalancer(max_staleness=0.001, seed=3)
        assert lb.choose_with(["rep0", "rep1"], rw) is None
        fresh = BoundedStalenessLoadBalancer(max_staleness=30.0, seed=3)
        assert fresh.choose_with(["rep0", "rep1"], rw) in ("rep0", "rep1")


# ---------------------------------------------------------------------------
# Consistency-aware routing through the engine
# ---------------------------------------------------------------------------


def make_replicated_engine(replica_lags=(60.0,), load_balancer=None):
    sources, group = make_storage_group(replica_lags=replica_lags)
    rw = ReadWriteGroup(
        "prim", primary="prim", replicas=[f"rep{i}" for i in range(len(replica_lags))],
        load_balancer=load_balancer or RoundRobinLoadBalancer(),
        replication=group,
    )
    feature = ReadWriteSplittingFeature([rw])
    engine = SQLEngine(sources, ShardingRule(default_data_source="prim"),
                       features=[feature])
    return sources, group, engine, feature


class TestReadYourWrites:
    def test_writer_session_never_reads_stale(self):
        sources, group, engine, feature = make_replicated_engine()
        try:
            engine.execute("UPDATE t SET v = 777 WHERE id = 1")
            rows = engine.execute("SELECT v FROM t WHERE id = 1").fetchall()
            assert rows == [(777,)]  # fell back to the primary
            assert feature.causal_fallbacks >= 1
        finally:
            engine.close()

    def test_other_sessions_may_read_stale(self):
        sources, group, engine, feature = make_replicated_engine()
        try:
            engine.execute("UPDATE t SET v = 777 WHERE id = 1")
            seen = []

            def fresh_reader():
                reset_session()  # a different client session: no token
                seen.append(
                    engine.execute("SELECT v FROM t WHERE id = 1").fetchall()
                )

            t = threading.Thread(target=fresh_reader)
            t.start()
            t.join()
            assert seen == [[(10,)]]  # replica snapshot from before the write
            assert feature.reads_routed >= 1
        finally:
            engine.close()

    def test_primary_pin_overrides_replica_routing(self):
        sources, group, engine, feature = make_replicated_engine()
        try:
            with pin_primary():
                engine.execute("SELECT v FROM t WHERE id = 1").fetchall()
            assert feature.reads_routed == 0
            assert feature.writes_routed == 1
        finally:
            engine.close()

    def test_open_breaker_replica_excluded(self):
        class _Breakers:
            def available(self, name):
                return name != "rep0"

        sources, group = make_storage_group(replica_lags=(0.0, 0.0))
        rw = ReadWriteGroup("prim", primary="prim", replicas=["rep0", "rep1"],
                            replication=group)
        feature = ReadWriteSplittingFeature([rw], breakers=_Breakers())
        engine = SQLEngine(sources, ShardingRule(default_data_source="prim"),
                           features=[feature])
        try:
            before = sources["rep0"].database.statements_executed
            for _ in range(6):
                engine.execute("SELECT v FROM t WHERE id = 1").fetchall()
            assert feature.reads_routed == 6
            assert sources["rep0"].database.statements_executed == before
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# Chaos: primary crash mid-workload, automatic promotion
# ---------------------------------------------------------------------------


class TestFailoverChaos:
    def test_primary_crash_promotes_replica_and_loses_nothing(self):
        sources, group = make_storage_group(replica_lags=(0.0, 0.0), seed_rows=0)
        runtime = ShardingRuntime(sources)
        runtime.rule.default_data_source = "prim"
        runtime.apply_rwsplit_rule("prim", "prim", ["rep0", "rep1"])
        detector = HealthDetector(
            sources, ConfigCenter(),
            groups=[GovReplicaGroup("prim", "prim", ["rep0", "rep1"])],
            interval=0.01,
        )
        runtime.attach_health_detector(detector)
        injector = FaultInjector(seed=5)
        for source in sources.values():
            source.set_fault_injector(injector)
        conn = ShardingDataSource(runtime).get_connection()

        acknowledged = []
        next_id = 0
        # Phase 1: healthy workload
        for _ in range(20):
            conn.execute(f"INSERT INTO t (id, v) VALUES ({next_id}, {next_id})")
            acknowledged.append(next_id)
            next_id += 1

        # Phase 2: the primary dies mid-workload. Writes fence (fail fast,
        # not acknowledged) until the Governor promotes a replica.
        injector.crash("prim")
        deadline = time.monotonic() + 5.0
        promoted = False
        while time.monotonic() < deadline:
            detector.check_once()
            try:
                conn.execute(f"INSERT INTO t (id, v) VALUES ({next_id}, {next_id})")
                acknowledged.append(next_id)
                next_id += 1
                promoted = True
                break
            except Exception:
                next_id += 1  # rejected, NOT acknowledged
        assert promoted, "no replica was promoted within the deadline"
        assert group.promotions, "storage-level promotion did not run"
        new_primary = group.promotions[0].new_primary
        assert new_primary in ("rep0", "rep1")
        assert detector.groups["prim"].primary == new_primary
        assert sources["prim"].fenced

        # Phase 3: workload continues against the new primary
        for _ in range(10):
            conn.execute(f"INSERT INTO t (id, v) VALUES ({next_id}, {next_id})")
            acknowledged.append(next_id)
            next_id += 1

        # No acknowledged write lost: every acknowledged id is readable.
        rows = conn.execute("SELECT id FROM t ORDER BY id").fetchall()
        present = {row[0] for row in rows}
        missing = [i for i in acknowledged if i not in present]
        assert not missing, f"acknowledged writes lost: {missing}"
        runtime.close()


# ---------------------------------------------------------------------------
# Result cache: unit level
# ---------------------------------------------------------------------------


def make_db(rows=2):
    source = DataSource("cachedb")
    source.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(rows):
        source.execute(f"INSERT INTO t (id, v) VALUES ({i}, {i})")
    return source.database


class TestResultCacheUnit:
    def test_store_and_hit_lru_order(self):
        db = make_db()
        cache = ResultCache(capacity=2)
        guard = [(db, "t", db.data_version("t"))]
        assert cache.store("k1", ["v"], [(1,)], guard, [])
        assert cache.store("k2", ["v"], [(2,)], guard, [])
        assert list(cache.lookup("k1").rows) == [(1,)]  # k1 now most-recent
        assert cache.store("k3", ["v"], [(3,)], guard, [])
        assert cache.evictions == 1
        assert cache.lookup("k2") is None  # k2 was LRU
        assert cache.lookup("k1") is not None

    def test_ttl_expiry(self):
        db = make_db()
        cache = ResultCache(ttl=0.01)
        cache.store("k", ["v"], [(1,)], [(db, "t", db.data_version("t"))], [])
        time.sleep(0.02)
        assert cache.lookup("k") is None
        assert cache.invalidations == 1

    def test_data_version_guard_invalidates(self):
        db = make_db()
        cache = ResultCache()
        cache.store("k", ["v"], [(1,)], [(db, "t", db.data_version("t"))], [])
        db.bump_data_version("t")
        assert cache.lookup("k") is None
        assert cache.invalidations == 1

    def test_stale_store_rejected(self):
        db = make_db()
        cache = ResultCache()
        guard = [(db, "t", db.data_version("t"))]
        db.bump_data_version("t")  # concurrent write between read and store
        assert not cache.store("k", ["v"], [(1,)], guard, [])
        assert len(cache) == 0

    def test_causal_guard_bypasses_without_evicting(self):
        db = make_db()
        cache = ResultCache()
        cache.store("k", ["v"], [(1,)], [(db, "t", db.data_version("t"))],
                    [("g", 5)])
        assert cache.lookup("k", lambda g: 9) is None  # session ahead of entry
        assert cache.causal_bypasses == 1
        assert cache.lookup("k", lambda g: 5) is not None  # entry still valid
        assert cache.lookup("k", lambda g: 0) is not None

    def test_oversized_results_not_cached(self):
        db = make_db()
        cache = ResultCache(max_rows=2)
        rows = [(i,) for i in range(3)]
        assert not cache.store("k", ["v"], rows, [(db, "t", db.data_version("t"))], [])

    def test_single_flight_lease(self):
        cache = ResultCache()
        leader, event = cache.lease("k")
        assert leader
        follower, same = cache.lease("k")
        assert not follower and same is event
        cache.release("k")
        assert same.is_set()
        again, _ = cache.lease("k")
        assert again  # lease usable again after release

    def test_clear_counts(self):
        db = make_db()
        cache = ResultCache()
        cache.store("k", ["v"], [(1,)], [(db, "t", db.data_version("t"))], [])
        assert cache.clear("test") == 1
        assert len(cache) == 0
        assert cache.stats()["clears"] == 1


# ---------------------------------------------------------------------------
# Result cache: through the engine
# ---------------------------------------------------------------------------


@pytest.fixture
def cached_engine():
    source = DataSource("solo")
    source.execute("CREATE TABLE t (id INT PRIMARY KEY, v INT)")
    for i in range(4):
        source.execute(f"INSERT INTO t (id, v) VALUES ({i}, {i * 10})")
    engine = SQLEngine({"solo": source}, ShardingRule(default_data_source="solo"))
    engine.result_cache.enabled = True
    yield source, engine
    engine.close()


class TestResultCacheEngine:
    def test_hot_point_read_does_zero_storage_work(self, cached_engine):
        source, engine = cached_engine
        sql, params = "SELECT v FROM t WHERE id = ?", (1,)
        assert engine.execute(sql, params).fetchall() == [(10,)]
        before = source.database.statements_executed
        result = engine.execute(sql, params)
        assert result.fetchall() == [(10,)]
        assert result.route_type == "result_cache"
        assert result.unit_count == 0
        # fully hot: the storage layer never saw the second execution
        assert source.database.statements_executed == before

    def test_update_invalidates(self, cached_engine):
        source, engine = cached_engine
        sql, params = "SELECT v FROM t WHERE id = ?", (1,)
        engine.execute(sql, params).fetchall()
        engine.execute("UPDATE t SET v = 111 WHERE id = 1")
        assert engine.execute(sql, params).fetchall() == [(111,)]

    def test_insert_and_delete_invalidate(self, cached_engine):
        source, engine = cached_engine
        sql = "SELECT count(*) FROM t"
        assert engine.execute(sql).fetchall() == [(4,)]
        engine.execute("INSERT INTO t (id, v) VALUES (90, 0)")
        assert engine.execute(sql).fetchall() == [(5,)]
        engine.execute("DELETE FROM t WHERE id = 90")
        assert engine.execute(sql).fetchall() == [(4,)]

    def test_truncate_invalidates(self, cached_engine):
        source, engine = cached_engine
        sql = "SELECT v FROM t WHERE id = 0"
        engine.execute(sql).fetchall()
        engine.execute("TRUNCATE TABLE t")
        assert engine.execute(sql).fetchall() == []

    def test_create_index_invalidates(self, cached_engine):
        source, engine = cached_engine
        sql = "SELECT v FROM t WHERE id = 2"
        engine.execute(sql).fetchall()
        hits_before = engine.result_cache.hits
        engine.execute("CREATE INDEX idx_v ON t (v)")
        engine.execute(sql).fetchall()
        assert engine.result_cache.invalidations >= 1
        assert engine.result_cache.hits == hits_before

    def test_plan_epoch_bump_clears(self, cached_engine):
        source, engine = cached_engine

        class _Safe(Feature):
            name = "noop"
            plan_cache_safe = True

        engine.execute("SELECT v FROM t WHERE id = 1").fetchall()
        assert len(engine.result_cache) == 1
        engine.add_feature(_Safe())
        assert len(engine.result_cache) == 0
        assert engine.result_cache.stats()["clears"] >= 1

    def test_primary_pin_bypasses_cache(self, cached_engine):
        source, engine = cached_engine
        with pin_primary():
            result = engine.execute("SELECT v FROM t WHERE id = 1")
            result.fetchall()
            assert result.route_type != "result_cache"
        assert len(engine.result_cache) == 0

    def test_select_for_update_not_cached(self, cached_engine):
        source, engine = cached_engine
        engine.execute("SELECT v FROM t WHERE id = 1 FOR UPDATE").fetchall()
        assert len(engine.result_cache) == 0

    def test_cached_rows_are_reusable(self, cached_engine):
        """Hits must replay buffered rows, not share one spent iterator."""
        source, engine = cached_engine
        sql = "SELECT id, v FROM t"
        first = sorted(engine.execute(sql).fetchall())
        second = sorted(engine.execute(sql).fetchall())
        third = sorted(engine.execute(sql).fetchall())
        assert first == second == third

    def test_cache_respects_read_your_writes_through_replicas(self):
        sources, group, engine, feature = make_replicated_engine(
            replica_lags=(60.0,))
        engine.result_cache.enabled = True
        try:
            # cold read: served by the (synced) replica, cached with a
            # causal guard at the current group LSN
            assert engine.execute("SELECT v FROM t WHERE id = 1").fetchall() == [(10,)]
            engine.execute("UPDATE t SET v = 555 WHERE id = 1")
            # the session's token now exceeds the entry's causal guard:
            # the hit is refused and the read falls back to the primary
            assert engine.execute("SELECT v FROM t WHERE id = 1").fetchall() == [(555,)]
            assert engine.result_cache.causal_bypasses + \
                engine.result_cache.invalidations >= 1
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# DistSQL surfaces
# ---------------------------------------------------------------------------


class TestDistSQLSurfaces:
    @pytest.fixture
    def replicated_runtime(self):
        sources, group = make_storage_group(replica_lags=(0.0, 30.0))
        runtime = ShardingRuntime(sources)
        runtime.rule.default_data_source = "prim"
        runtime.apply_rwsplit_rule("prim", "prim", ["rep0", "rep1"])
        yield sources, group, runtime
        runtime.close()

    def test_show_read_resources(self, replicated_runtime):
        sources, group, runtime = replicated_runtime
        result = execute_distsql("SHOW READ RESOURCES", runtime)
        assert result.columns[0] == "group"
        row = result.rows[0]
        assert row[0] == "prim" and "rep0" in row[2]
        assert row[-1] == "yes"  # replication-wired

    def test_show_replication_lag(self, replicated_runtime):
        sources, group, runtime = replicated_runtime
        sources["prim"].execute("INSERT INTO t (id, v) VALUES (70, 7)")
        result = execute_distsql("SHOW REPLICATION LAG", runtime)
        rows = {row[1]: row for row in result.rows}
        assert set(rows) == {"rep0", "rep1"}
        assert rows["rep1"][4] >= 1  # lag_records on the slow replica

    def test_result_cache_variable_and_show_clear(self, replicated_runtime):
        sources, group, runtime = replicated_runtime
        conn = ShardingDataSource(runtime).get_connection()
        conn.execute("SET VARIABLE result_cache = ON")
        assert runtime.engine.result_cache.enabled
        conn.execute("SELECT v FROM t WHERE id = 1").fetchall()
        conn.execute("SELECT v FROM t WHERE id = 1").fetchall()
        shown = execute_distsql("SHOW RESULT CACHE", runtime)
        stats = dict(shown.rows)
        assert int(stats["hits"]) >= 1
        assert int(stats["entries"]) >= 1
        cleared = execute_distsql("CLEAR RESULT CACHE", runtime)
        assert "1" in (cleared.message or "") or len(runtime.engine.result_cache) == 0
        conn.execute("SET VARIABLE result_cache = OFF")
        assert not runtime.engine.result_cache.enabled


# ---------------------------------------------------------------------------
# Bench wiring: replicas through the system-under-test builder
# ---------------------------------------------------------------------------


class TestBenchReplicaWiring:
    def test_ssj_system_builds_replica_groups(self):
        from repro.baselines import ShardingJDBCSystem
        from repro.bench.sysbench import SysbenchConfig, SysbenchWorkload

        system = ShardingJDBCSystem(
            [("sbtest", "id")], num_sources=2, tables_per_source=2,
            replicas=2, replication_lag=0.0, result_cache=True,
        )
        try:
            assert len(system.replica_groups) == 2
            assert system.runtime.engine.result_cache.enabled
            assert "ds0_r1" in system.runtime.data_sources
            feature = system.runtime._rwsplit_feature
            assert feature is not None
            assert feature.groups["ds0"].replication is system.replica_groups[0]
            SysbenchWorkload(SysbenchConfig(table_size=40)).prepare(system)
            system.sync_replicas()
            assert all(g.lag_records(r) == 0 for g in system.replica_groups
                       for r in g.replica_names)
            session = system.session()
            rows = session.execute("SELECT c FROM sbtest WHERE id = 1")
            assert len(rows) == 1
            assert feature.reads_routed >= 1
            session.close()
        finally:
            system.close()
