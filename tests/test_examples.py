"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in EXAMPLES_DIR.glob("*.py")),
)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3
