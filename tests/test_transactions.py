"""Tests for distributed transactions: LOCAL, XA (incl. recovery), BASE."""

import pytest

from repro.exceptions import BaseTransactionError, TransactionError, XATransactionError
from repro.storage import DataSource
from repro.transaction import (
    TransactionCoordinator,
    TransactionManager,
    TransactionType,
    XATransactionLog,
    recover,
)


@pytest.fixture
def pair():
    sources = {"ds0": DataSource("ds0"), "ds1": DataSource("ds1")}
    for ds in sources.values():
        ds.execute("CREATE TABLE acct (id INT PRIMARY KEY, balance INT NOT NULL)")
        ds.execute("INSERT INTO acct (id, balance) VALUES (1, 100)")
    return sources


def balances(sources):
    return {
        name: ds.execute("SELECT balance FROM acct WHERE id = 1")[0][0]
        for name, ds in sources.items()
    }


def transfer(txn, amounts):
    for ds_name, delta in amounts.items():
        conn = txn.connection_for(ds_name)
        conn.execute(f"UPDATE acct SET balance = balance + {delta} WHERE id = 1")


class TestTransactionType:
    def test_of_parses_names(self):
        assert TransactionType.of("xa") is TransactionType.XA
        assert TransactionType.of("LOCAL") is TransactionType.LOCAL

    def test_of_rejects_unknown(self):
        with pytest.raises(TransactionError):
            TransactionType.of("SAGA")

    def test_manager_switches_type(self, pair):
        manager = TransactionManager(pair)
        manager.set_type("XA")
        assert manager.begin().type is TransactionType.XA
        manager.set_type(TransactionType.BASE)
        assert manager.begin().type is TransactionType.BASE


class TestLocal:
    def test_commit_applies_everywhere(self, pair):
        manager = TransactionManager(pair, TransactionType.LOCAL)
        txn = manager.begin()
        transfer(txn, {"ds0": -30, "ds1": 30})
        txn.commit()
        assert balances(pair) == {"ds0": 70, "ds1": 130}

    def test_rollback_restores(self, pair):
        manager = TransactionManager(pair, TransactionType.LOCAL)
        txn = manager.begin()
        transfer(txn, {"ds0": -30, "ds1": 30})
        txn.rollback()
        assert balances(pair) == {"ds0": 100, "ds1": 100}

    def test_commit_ignores_failures(self, pair):
        """1PC best effort: one failing source doesn't abort the others."""
        manager = TransactionManager(pair, TransactionType.LOCAL)
        txn = manager.begin()
        transfer(txn, {"ds0": -30, "ds1": 30})
        pair["ds0"].database.fail_next("commit")
        txn.commit()  # no raise
        assert balances(pair)["ds1"] == 130
        assert len(txn.failures) == 1

    def test_connections_released(self, pair):
        manager = TransactionManager(pair, TransactionType.LOCAL)
        txn = manager.begin()
        transfer(txn, {"ds0": 1, "ds1": 1})
        txn.commit()
        assert pair["ds0"].pool.in_use == 0
        assert pair["ds1"].pool.in_use == 0

    def test_finished_transaction_rejects_use(self, pair):
        manager = TransactionManager(pair, TransactionType.LOCAL)
        txn = manager.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.connection_for("ds0")


class TestXA:
    def test_commit_two_phase(self, pair):
        manager = TransactionManager(pair, TransactionType.XA)
        txn = manager.begin()
        transfer(txn, {"ds0": -50, "ds1": 50})
        txn.commit()
        assert balances(pair) == {"ds0": 50, "ds1": 150}
        # nothing left prepared
        assert pair["ds0"].database.prepared_xids() == []

    def test_prepare_failure_rolls_back_everything(self, pair):
        manager = TransactionManager(pair, TransactionType.XA)
        txn = manager.begin()
        transfer(txn, {"ds0": -50, "ds1": 50})
        pair["ds1"].database.fail_next("prepare")
        with pytest.raises(XATransactionError):
            txn.commit()
        assert balances(pair) == {"ds0": 100, "ds1": 100}
        assert manager.xa_log.get(txn.xid) is None

    def test_rollback(self, pair):
        manager = TransactionManager(pair, TransactionType.XA)
        txn = manager.begin()
        transfer(txn, {"ds0": -50, "ds1": 50})
        txn.rollback()
        assert balances(pair) == {"ds0": 100, "ds1": 100}

    def test_phase2_failure_recovered_from_log(self, pair):
        """Paper: if some RM commits fail after all replied OK, the logs
        let ShardingSphere re-commit after restart."""
        log = XATransactionLog()
        manager = TransactionManager(pair, TransactionType.XA, xa_log=log)
        txn = manager.begin()
        transfer(txn, {"ds0": -50, "ds1": 50})
        pair["ds1"].database.fail_next("commit")
        with pytest.raises(XATransactionError):
            txn.commit()
        # ds0 committed; ds1 still holds a prepared branch.
        assert balances(pair)["ds0"] == 50
        assert pair["ds1"].database.prepared_xids() != []
        # Coordinator "restarts" and recovers from its log.
        recovered = recover(log, pair)
        assert recovered == 1
        assert balances(pair) == {"ds0": 50, "ds1": 150}
        assert pair["ds1"].database.prepared_xids() == []
        assert log.in_doubt() == []

    def test_recover_noop_when_clean(self, pair):
        log = XATransactionLog()
        assert recover(log, pair) == 0

    def test_single_participant(self, pair):
        manager = TransactionManager(pair, TransactionType.XA)
        txn = manager.begin()
        transfer(txn, {"ds0": 5})
        txn.commit()
        assert balances(pair)["ds0"] == 105


class TestBase:
    def make_manager(self, pair, rpc_delay=0.0):
        return TransactionManager(
            pair, TransactionType.BASE,
            coordinator=TransactionCoordinator(rpc_delay=rpc_delay),
        )

    def test_commit(self, pair):
        manager = self.make_manager(pair)
        txn = manager.begin()
        transfer(txn, {"ds0": -20, "ds1": 20})
        txn.commit()
        assert balances(pair) == {"ds0": 80, "ds1": 120}

    def test_rollback_before_commit(self, pair):
        manager = self.make_manager(pair)
        txn = manager.begin()
        transfer(txn, {"ds0": -20, "ds1": 20})
        txn.rollback()
        assert balances(pair) == {"ds0": 100, "ds1": 100}

    def test_phase1_failure_compensates_committed_branches(self, pair):
        """The undo logs restore a branch that already committed locally."""
        manager = self.make_manager(pair)
        txn = manager.begin()
        transfer(txn, {"ds0": -20, "ds1": 20})
        pair["ds1"].database.fail_next("commit")
        with pytest.raises(BaseTransactionError):
            txn.commit()
        # ds0 committed locally in phase 1 but was compensated back.
        assert balances(pair) == {"ds0": 100, "ds1": 100}

    def test_global_xid_assigned(self, pair):
        manager = self.make_manager(pair)
        txn = manager.begin()
        assert txn.xid.startswith("seata-")
        txn.rollback()

    def test_coordinator_cleans_up(self, pair):
        manager = self.make_manager(pair)
        txn = manager.begin()
        transfer(txn, {"ds0": 1})
        txn.commit()
        assert manager.coordinator._globals == {}

    def test_rpc_delay_makes_base_slower_than_local(self, pair):
        import time

        local = TransactionManager(pair, TransactionType.LOCAL)
        base = self.make_manager(pair, rpc_delay=0.002)

        start = time.perf_counter()
        txn = local.begin()
        transfer(txn, {"ds0": 1, "ds1": 1})
        txn.commit()
        local_time = time.perf_counter() - start

        start = time.perf_counter()
        txn = base.begin()
        transfer(txn, {"ds0": 1, "ds1": 1})
        txn.commit()
        base_time = time.perf_counter() - start
        assert base_time > local_time
