"""Shared fixtures: the paper's running example topology.

Two data sources; ``t_user`` and ``t_order`` horizontally sharded by
``uid % 2`` (Fig. 3 of the paper); a broadcast ``t_dict`` table; binding
relationship between user and order.
"""

import pytest

from repro.engine import SQLEngine
from repro.sharding import (
    DataNode,
    ShardingRule,
    StandardShardingStrategy,
    TableRule,
    create_algorithm,
)
from repro.storage import DataSource


def mod2():
    return create_algorithm("MOD", {"sharding-count": 2})


@pytest.fixture
def fleet():
    """dict of two data sources with the paper's physical tables."""
    sources = {"ds0": DataSource("ds0"), "ds1": DataSource("ds1")}
    for i, ds in enumerate(sources.values()):
        ds.execute(f"CREATE TABLE t_user_h{i} (uid INT PRIMARY KEY, name VARCHAR(64), age INT)")
        ds.execute(f"CREATE TABLE t_order_h{i} (oid INT PRIMARY KEY, uid INT, amount FLOAT)")
        ds.execute("CREATE TABLE t_dict (k VARCHAR(16) , v VARCHAR(16))")
    return sources


@pytest.fixture
def paper_rule():
    t_user = TableRule(
        "t_user",
        [DataNode("ds0", "t_user_h0"), DataNode("ds1", "t_user_h1")],
        database_strategy=StandardShardingStrategy("uid", mod2()),
    )
    t_order = TableRule(
        "t_order",
        [DataNode("ds0", "t_order_h0"), DataNode("ds1", "t_order_h1")],
        database_strategy=StandardShardingStrategy("uid", mod2()),
    )
    return ShardingRule(
        [t_user, t_order],
        binding_groups=[["t_user", "t_order"]],
        broadcast_tables=["t_dict"],
        default_data_source="ds0",
    )


@pytest.fixture
def nonbinding_rule(paper_rule):
    rule = ShardingRule(
        [paper_rule.table_rule("t_user"), paper_rule.table_rule("t_order")],
        broadcast_tables=["t_dict"],
        default_data_source="ds0",
    )
    return rule


@pytest.fixture
def engine(fleet, paper_rule):
    eng = SQLEngine(fleet, paper_rule, max_connections_per_query=2)
    yield eng
    eng.close()


@pytest.fixture
def seeded_engine(engine):
    engine.execute(
        "INSERT INTO t_user (uid, name, age) VALUES "
        "(1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35), (4, 'dave', 28)"
    )
    engine.execute(
        "INSERT INTO t_order (oid, uid, amount) VALUES "
        "(10, 1, 5.0), (11, 2, 7.5), (12, 3, 3.0), (13, 1, 2.0)"
    )
    return engine
