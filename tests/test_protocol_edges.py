"""Edge-case tests for the wire protocol: fragmentation, limits, garbage."""

import io
import socket
import struct
import threading

import pytest

from repro.exceptions import ProtocolError
from repro.protocol import PacketType, encode
from repro.protocol.message import MAX_PACKET, read_packet, send_packet


class FakeSock:
    """A socket stub that serves bytes in configurable chunk sizes."""

    def __init__(self, data: bytes, chunk: int = 1):
        self.buffer = io.BytesIO(data)
        self.chunk = chunk

    def recv(self, n: int) -> bytes:
        return self.buffer.read(min(n, self.chunk))


class TestFraming:
    def test_one_byte_at_a_time(self):
        raw = encode(PacketType.QUERY, {"sql": "SELECT 1", "params": []})
        packet_type, body = read_packet(FakeSock(raw, chunk=1))
        assert packet_type is PacketType.QUERY
        assert body["sql"] == "SELECT 1"

    def test_irregular_chunks(self):
        raw = encode(PacketType.ROW_BATCH, {"rows": [[1, "x", None, True]] * 50})
        packet_type, body = read_packet(FakeSock(raw, chunk=7))
        assert packet_type is PacketType.ROW_BATCH
        assert len(body["rows"]) == 50

    def test_back_to_back_packets(self):
        raw = encode(PacketType.OK, {"rowcount": 1}) + encode(PacketType.OK, {"rowcount": 2})
        sock = FakeSock(raw, chunk=3)
        _, first = read_packet(sock)
        _, second = read_packet(sock)
        assert (first["rowcount"], second["rowcount"]) == (1, 2)

    def test_empty_body(self):
        raw = encode(PacketType.RESULT_END, None)
        packet_type, body = read_packet(FakeSock(raw))
        assert packet_type is PacketType.RESULT_END
        assert body is None

    def test_unicode_payload(self):
        raw = encode(PacketType.QUERY, {"sql": "SELECT '数据分片'"})
        _, body = read_packet(FakeSock(raw))
        assert body["sql"] == "SELECT '数据分片'"

    def test_unknown_type_byte(self):
        payload = b"{}"
        raw = struct.pack(">IB", len(payload) + 1, 250) + payload
        with pytest.raises(ProtocolError, match="unknown packet type"):
            read_packet(FakeSock(raw))

    def test_oversized_length_rejected(self):
        raw = struct.pack(">IB", MAX_PACKET + 10, int(PacketType.QUERY))
        with pytest.raises(ProtocolError, match="bad packet length"):
            read_packet(FakeSock(raw))

    def test_oversized_encode_rejected(self):
        with pytest.raises(ProtocolError):
            encode(PacketType.ROW_BATCH, {"blob": "x" * (MAX_PACKET + 1)})

    def test_truncated_mid_body(self):
        raw = encode(PacketType.QUERY, {"sql": "SELECT 1"})
        with pytest.raises(ProtocolError, match="closed mid-packet"):
            read_packet(FakeSock(raw[: len(raw) - 3]))


class TestRealSocketPair:
    def test_send_and_read_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            payload = {"rows": [[i, f"row-{i}"] for i in range(100)]}

            def writer():
                send_packet(left, PacketType.ROW_BATCH, payload)

            thread = threading.Thread(target=writer)
            thread.start()
            packet_type, body = read_packet(right)
            thread.join()
            assert packet_type is PacketType.ROW_BATCH
            assert body == payload
        finally:
            left.close()
            right.close()
